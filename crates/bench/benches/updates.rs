//! E4/E5 — Proposition 2 (updates) and Theorem 3: probabilistic insertions
//! stay polynomial while the `d0` deletion on the Theorem 3 family takes
//! time (and space) exponential in `n` — plus the update-engine scenarios:
//! batched scripts, nested deletion targets, and the blow-up control
//! (shared-first negation chains + simplification) contrasted against the
//! naive Appendix A expansion via size counters asserted outside the timed
//! regions.
//!
//! Set `PXML_BENCH_QUICK=1` (as CI's `bench-smoke` job does) for a fast
//! smoke run with small iteration budgets.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pxml_bench::{rng, scaling_probtree, SCALING_SIZES};
use pxml_core::semantics::possible_worlds;
use pxml_core::update::{ProbabilisticUpdate, UpdateEngine, UpdateEngineConfig, UpdateOperation};
use pxml_core::{PatternQuery, ProbTree};
use pxml_events::{Condition, Literal};
use pxml_tree::DataTree;
use pxml_workloads::paper::{d0_deletion, theorem3_tree};
use pxml_workloads::warehouse::{scenario_script, skeleton, WarehouseConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn quick() -> bool {
    pxml_core::config::env::flag(pxml_core::config::env::BENCH_QUICK)
}

/// E4: insertion scaling on random prob-trees (insert an `E` child under
/// every `L0` node, confidence 0.9).
fn bench_insertions(c: &mut Criterion) {
    let mut r = rng();
    let sizes: &[usize] = if quick() {
        &SCALING_SIZES[..2]
    } else {
        &SCALING_SIZES
    };
    let trees: Vec<_> = sizes
        .iter()
        .map(|&n| (n, scaling_probtree(n, &mut r)))
        .collect();
    let mut group = c.benchmark_group("e4_insertion_scaling");
    for (n, tree) in &trees {
        group.bench_with_input(BenchmarkId::from_parameter(n), tree, |b, tree| {
            b.iter(|| {
                let q = PatternQuery::new(Some("L0"));
                let at = q.root();
                let update = ProbabilisticUpdate::new(
                    UpdateOperation::insert(q, at, DataTree::new("E")),
                    0.9,
                );
                update.apply_to_probtree(tree)
            });
        });
    }
    group.finish();
}

/// E5: the Theorem 3 deletion blow-up — `d0` on the n-C-children family.
/// Time doubles (at least) with every increment of n; the companion table
/// (`tables --exp e5`) reports the output sizes. Timed on the raw engine
/// configuration so the curve measures the Appendix A deletion itself,
/// not the (separately benchmarked) simplification pass.
fn bench_theorem3_deletion(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_theorem3_deletion");
    let sizes: &[usize] = if quick() {
        &[2, 4]
    } else {
        &[2, 4, 6, 8, 10, 12]
    };
    let engine = UpdateEngine::with_config(UpdateEngineConfig::raw());
    for &n in sizes {
        let tree = theorem3_tree(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &tree, |b, tree| {
            b.iter(|| engine.apply(tree, &d0_deletion(1.0)));
        });
    }
    group.finish();
}

/// E5 (contrast): the same query used for an insertion instead of a
/// deletion stays flat on the very same family.
fn bench_theorem3_insertion_contrast(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_theorem3_insertion_contrast");
    let sizes: &[usize] = if quick() {
        &[2, 4]
    } else {
        &[2, 4, 6, 8, 10, 12]
    };
    for &n in sizes {
        let tree = theorem3_tree(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &tree, |b, tree| {
            b.iter(|| {
                let (update, _) = pxml_workloads::paper::d0_insertion(1.0);
                update.apply_to_probtree(tree)
            });
        });
    }
    group.finish();
}

/// Blow-up control on the confidence-c Theorem 3 deletion: the naive
/// Appendix A expansion produces `3^n` survivor copies, shared-first
/// chains produce `1 + 2^n`, and the simplification pass recovers the same
/// reduction from the naive output. The size ratios are asserted outside
/// the timed region; the timed comparison contrasts the engine
/// configurations.
fn bench_deletion_blowup_control(c: &mut Criterion) {
    let n = if quick() { 3 } else { 5 };
    let tree = theorem3_tree(n);
    let update = d0_deletion(0.8);
    let raw_engine = UpdateEngine::with_config(UpdateEngineConfig::raw());
    let default_engine = UpdateEngine::new();
    let simplify_only = UpdateEngine::with_config(UpdateEngineConfig {
        simplify: true,
        shared_first_chains: false,
        ..UpdateEngineConfig::default()
    });

    // Counter assertions (sizes, not wall-clock).
    let (raw_out, raw_report) = raw_engine.apply(&tree, &update);
    let (default_out, _) = default_engine.apply(&tree, &update);
    let (simplified_out, simplified_report) = simplify_only.apply(&tree, &update);
    // Survivor copies are shared handles, so count the *logical* B
    // occurrences through the expanded view.
    let b_copies = |t: &ProbTree| {
        let t = t.expanded();
        t.tree()
            .iter()
            .filter(|&nd| t.tree().label(nd) == "B")
            .count()
    };
    assert_eq!(
        b_copies(&raw_out),
        3usize.pow(n as u32),
        "naive: 3^n copies"
    );
    assert_eq!(
        b_copies(&default_out),
        1 + (1usize << n),
        "shared-first chains: 1 + 2^n copies"
    );
    assert_eq!(
        b_copies(&simplified_out),
        1 + (1usize << n),
        "simplification recovers the same cover from the naive output"
    );
    assert!(simplified_report.simplification_savings() > 0);
    assert_eq!(raw_report.size_raw(), raw_out.size());
    // All three agree with the Definition 16 semantics at a feasible n.
    if n <= 3 {
        let via_pw = update
            .apply_to_pw_set(&possible_worlds(&tree, 20).unwrap())
            .normalized();
        for out in [&raw_out, &default_out, &simplified_out] {
            let direct = possible_worlds(out, 20).unwrap().normalized();
            assert!(direct.isomorphic(&via_pw));
        }
    }

    let mut group = c.benchmark_group("e5_deletion_blowup_control");
    group.bench_with_input(BenchmarkId::new("naive", n), &tree, |b, tree| {
        b.iter(|| raw_engine.apply(tree, &update));
    });
    group.bench_with_input(BenchmarkId::new("shared_first", n), &tree, |b, tree| {
        b.iter(|| default_engine.apply(tree, &update));
    });
    group.bench_with_input(BenchmarkId::new("simplify_naive", n), &tree, |b, tree| {
        b.iter(|| simplify_only.apply(tree, &update));
    });
    group.finish();
}

/// Nested deletion targets: chains of `B → C, B → …` where every `B` with
/// a `C` child is a target, so each target's survival split must land
/// inside its ancestors' survivor copies (the bug the engine fixed). The
/// correctness of the small instance is asserted against the PW semantics
/// outside the timed region.
fn bench_nested_target_deletion(c: &mut Criterion) {
    fn nested_chain(depth: usize) -> ProbTree {
        let mut t = ProbTree::new("A");
        let root = t.tree().root();
        let mut cur = root;
        for i in 0..depth {
            let b = t.add_child(cur, "B", Condition::always());
            let w = t.events_mut().insert(format!("x{i}"), 0.5);
            t.add_child(b, "C", Condition::of(Literal::pos(w)));
            cur = b;
        }
        t
    }
    fn delete_b_with_c(confidence: f64) -> ProbabilisticUpdate {
        let mut q = PatternQuery::new(Some("B"));
        let b = q.root();
        q.add_child(b, "C");
        ProbabilisticUpdate::new(UpdateOperation::delete(q, b), confidence)
    }

    // Correctness cross-check on a feasible instance.
    let small = nested_chain(3);
    let update = delete_b_with_c(0.9);
    let (updated, _) = UpdateEngine::new().apply(&small, &update);
    let direct = possible_worlds(&updated, 20).unwrap().normalized();
    let via_pw = update
        .apply_to_pw_set(&possible_worlds(&small, 20).unwrap())
        .normalized();
    assert!(
        direct.isomorphic(&via_pw),
        "nested-target deletion must agree with the PW semantics"
    );

    let mut group = c.benchmark_group("updates_nested_target_deletion");
    let depths: &[usize] = if quick() { &[4] } else { &[4, 6, 8] };
    let engine = UpdateEngine::new();
    for &depth in depths {
        let tree = nested_chain(depth);
        group.bench_with_input(BenchmarkId::from_parameter(depth), &tree, |b, tree| {
            b.iter(|| engine.apply(tree, &update));
        });
    }
    group.finish();
}

/// E13 — hash-consed DAG storage on the Theorem 3 deletion: at `n = 12`
/// the confidence-c deletion produces `1 + 2^12 = 4097` **logical**
/// survivor copies of the deleted `B` leaf, but the shared node store
/// keeps the **distinct** stored node count linear in `n` (`n + 2`). The
/// counters are asserted outside the timed region (in quick mode too —
/// this is CI's dedup smoke check); the timed comparison contrasts shared
/// grafting with the deep-copy oracle at a feasible size.
fn bench_dedup_memory(c: &mut Criterion) {
    let shared_engine = UpdateEngine::with_config(UpdateEngineConfig {
        simplify: false,
        ..UpdateEngineConfig::default()
    });

    // Counter assertions (storage, not wall-clock): distinct stays linear
    // while the logical count blows up exponentially.
    let n = 12usize;
    let update = d0_deletion(0.8);
    let (out, report) = shared_engine.apply(&theorem3_tree(n), &update);
    let stats = out.memory_stats();
    assert_eq!(
        stats.logical_nodes,
        1 + n + 1 + (1usize << n),
        "root + n C children + (1 + 2^n) B survivor copies"
    );
    assert_eq!(
        stats.distinct_nodes,
        n + 2,
        "distinct stored nodes grow linearly in n"
    );
    assert_eq!(report.distinct_nodes_after, stats.distinct_nodes);
    assert!(stats.dedup_ratio() > 100.0);
    // The deep-copy oracle materializes every logical copy (checked at a
    // size where 3^n-free logical grafting is still feasible).
    let deep_engine = UpdateEngine::with_config(
        UpdateEngineConfig {
            simplify: false,
            ..UpdateEngineConfig::default()
        }
        .deep_oracle(),
    );
    let small = if quick() { 6 } else { 10 };
    let (shared_small, _) = shared_engine.apply(&theorem3_tree(small), &update);
    let (deep_small, _) = deep_engine.apply(&theorem3_tree(small), &update);
    let shared_stats = shared_small.memory_stats();
    let deep_stats = deep_small.memory_stats();
    assert_eq!(deep_stats.logical_nodes, deep_stats.distinct_nodes);
    assert_eq!(deep_stats.logical_nodes, shared_stats.logical_nodes);
    assert_eq!(
        shared_small.to_ascii(),
        deep_small.to_ascii(),
        "shared and deep representations render identically"
    );

    let mut group = c.benchmark_group("e13_dedup_memory");
    let tree = theorem3_tree(small);
    group.bench_with_input(BenchmarkId::new("shared", small), &tree, |b, tree| {
        b.iter(|| shared_engine.apply(tree, &update));
    });
    group.bench_with_input(BenchmarkId::new("deep_copy", small), &tree, |b, tree| {
        b.iter(|| deep_engine.apply(tree, &update));
    });
    group.finish();
}

/// Batched update scripts: the warehouse extraction pipeline applied in
/// one `apply_script` pass, at growing round counts.
fn bench_update_scripts(c: &mut Criterion) {
    let mut group = c.benchmark_group("updates_warehouse_script");
    let rounds: &[usize] = if quick() { &[6] } else { &[6, 12, 18] };
    for &extraction_rounds in rounds {
        let config = WarehouseConfig {
            services: 4,
            extraction_rounds,
            deletion_ratio: 0.25,
        };
        let mut r = StdRng::seed_from_u64(0xBEEF ^ extraction_rounds as u64);
        let (script, _) = scenario_script(&config, &mut r);
        let base = skeleton(config.services);
        // Scripts report per-step telemetry; spot-check it once, untimed.
        let engine = UpdateEngine::new();
        let (_, report) = engine.apply_script(&base, &script);
        assert_eq!(report.steps.len(), script.len());
        group.bench_with_input(
            BenchmarkId::from_parameter(extraction_rounds),
            &(base, script),
            |b, (base, script)| {
                b.iter(|| UpdateEngine::new().apply_script(base, script));
            },
        );
    }
    group.finish();
}

fn config() -> Criterion {
    if quick() {
        Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(20))
            .measurement_time(Duration::from_millis(80))
    } else {
        Criterion::default()
            .sample_size(15)
            .warm_up_time(Duration::from_millis(400))
            .measurement_time(Duration::from_millis(1500))
    }
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_insertions, bench_theorem3_deletion,
        bench_theorem3_insertion_contrast, bench_deletion_blowup_control,
        bench_dedup_memory, bench_nested_target_deletion,
        bench_update_scripts
}
criterion_main!(benches);
