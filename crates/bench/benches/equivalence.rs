//! E6 — Theorem 2: the randomized (Figure 3) structural-equivalence
//! algorithm runs in polynomial time, while the exhaustive baseline
//! enumerates `2^{|W|}` valuations.
//!
//! The workload pairs a document produced by "pipeline A" with an
//! equivalent rewrite of it (reordered children, redundant literals), for a
//! growing number of sections (each section adds two event variables), plus
//! inequivalent pairs obtained by flipping one literal.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pxml_bench::rng;
use pxml_core::equivalence::{
    structural_equivalent_exhaustive, structural_equivalent_randomized, EquivalenceConfig,
};
use pxml_core::probtree::ProbTree;
use pxml_events::{Condition, Literal};

fn document(sections: usize, reorder: bool, redundant: bool) -> ProbTree {
    let mut t = ProbTree::new("doc");
    let mut events = Vec::new();
    for i in 0..sections {
        let accepted = t.events_mut().insert(format!("a{i}"), 0.9);
        let flagged = t.events_mut().insert(format!("f{i}"), 0.2);
        events.push((accepted, flagged));
    }
    let root = t.tree().root();
    let order: Vec<usize> = if reorder {
        (0..sections).rev().collect()
    } else {
        (0..sections).collect()
    };
    for i in order {
        let (accepted, flagged) = events[i];
        let cond = Condition::from_literals([Literal::pos(accepted), Literal::neg(flagged)]);
        let section = t.add_child(root, "section", cond.clone());
        let para_cond = if redundant { cond } else { Condition::always() };
        t.add_child(section, format!("para{i}"), para_cond);
    }
    t
}

fn bench_randomized(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_equivalence_randomized");
    for sections in [2usize, 4, 6, 8, 16, 32, 64] {
        let a = document(sections, false, false);
        let b = document(sections, true, true);
        group.bench_with_input(
            BenchmarkId::from_parameter(sections * 2),
            &(a, b),
            |bencher, (a, b)| {
                let mut r = rng();
                bencher.iter(|| {
                    structural_equivalent_randomized(a, b, &EquivalenceConfig::default(), &mut r)
                });
            },
        );
    }
    group.finish();
}

fn bench_exhaustive(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_equivalence_exhaustive");
    // The exhaustive check is 2^{|W|}: stop at 16 events.
    for sections in [2usize, 4, 6, 8] {
        let a = document(sections, false, false);
        let b = document(sections, true, true);
        group.bench_with_input(
            BenchmarkId::from_parameter(sections * 2),
            &(a, b),
            |bencher, (a, b)| {
                bencher.iter(|| structural_equivalent_exhaustive(a, b, 24).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_randomized_inequivalent(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_equivalence_randomized_inequivalent");
    for sections in [8usize, 32] {
        let a = document(sections, false, false);
        let mut b = document(sections, true, true);
        // Flip one literal.
        let flagged0 = b.events().by_name("f0").unwrap();
        let accepted0 = b.events().by_name("a0").unwrap();
        let section = b
            .tree()
            .iter()
            .find(|&n| b.tree().label(n) == "section")
            .unwrap();
        b.set_condition(
            section,
            Condition::from_literals([Literal::pos(accepted0), Literal::pos(flagged0)]),
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(sections * 2),
            &(a, b),
            |bencher, (a, b)| {
                let mut r = rng();
                bencher.iter(|| {
                    structural_equivalent_randomized(a, b, &EquivalenceConfig::default(), &mut r)
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(15)
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_millis(1500));
    targets = bench_randomized, bench_exhaustive, bench_randomized_inequivalent
}
criterion_main!(benches);
