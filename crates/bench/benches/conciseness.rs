//! E2 — Proposition 1: representing possible-world sets. The PW-set →
//! prob-tree construction is linear in the *total size of the PW set*
//! (number of worlds × world size), and Proposition 1 shows that no
//! representation can do asymptotically better on average. This bench
//! measures the construction cost as the number of worlds grows; the
//! companion table reports sizes and the doubly-exponential counting bound.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pxml_core::pwset::PossibleWorldSet;
use pxml_core::semantics::pw_set_to_probtree;
use pxml_tree::DataTree;

/// A PW set with `worlds` distinct worlds of ~`world_size` nodes each.
fn synthetic_pw_set(worlds: usize, world_size: usize) -> PossibleWorldSet {
    let mut set = Vec::new();
    for i in 0..worlds {
        let mut tree = DataTree::new("R");
        let root = tree.root();
        for j in 0..world_size.saturating_sub(1) {
            // Vary the labels per world so that all worlds are distinct.
            tree.add_child(root, format!("L{}", (i + j) % (world_size + i + 1)));
        }
        set.push((tree, 1.0 / worlds as f64));
    }
    PossibleWorldSet::from_worlds(set)
}

fn bench_pw_to_probtree(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_pw_set_to_probtree");
    for worlds in [4usize, 16, 64, 256, 1024] {
        let pw = synthetic_pw_set(worlds, 8);
        group.bench_with_input(BenchmarkId::from_parameter(worlds), &pw, |b, pw| {
            b.iter(|| pw_set_to_probtree(pw).unwrap());
        });
    }
    group.finish();
}

fn bench_normalization(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_pw_set_normalization");
    for worlds in [64usize, 256, 1024, 4096] {
        let pw = synthetic_pw_set(worlds, 8);
        group.bench_with_input(BenchmarkId::from_parameter(worlds), &pw, |b, pw| {
            b.iter(|| pw.normalized());
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_millis(1500));
    targets = bench_pw_to_probtree, bench_normalization
}
criterion_main!(benches);
