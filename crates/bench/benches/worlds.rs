//! Relevant-event world engine: dense vs sparse event usage.
//!
//! The legacy `possible_worlds` baseline enumerates all `2^{|W|}`
//! valuations of the *declared* event table; the `WorldEngine` enumerates
//! only the `2^{|relevant|}` partial valuations of the events the tree's
//! conditions actually mention. On a 200-node tree with 40 declared but
//! only 10 mentioned events the legacy path is infeasible (`2^40`
//! valuations — it refuses at the default `2^24` guard) while the engine
//! answers in milliseconds; on a dense tree (every declared event
//! mentioned) the two do the same amount of enumeration and the engine's
//! streamed canonical-form accumulator still avoids the second
//! normalization pass.
//!
//! Two further scenarios exercise the *factorized* shard executor: a
//! many-small-components tree (24 events in 8 co-occurrence components of
//! 3) where `Σ_c 2^{|C_i|} = 64` shard states replace the infeasible
//! `2^24` joint walk (asserted via the enumeration counter), and a joint
//! drain at feasible sizes comparing the shard-combine against the
//! streamed engine.
//!
//! Set `PXML_BENCH_QUICK=1` (as CI does) for a fast smoke run with small
//! iteration budgets.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pxml_core::semantics::possible_worlds;
use pxml_core::worlds::{WorldEngine, WorldEngineConfig};
use pxml_core::ProbTree;
use pxml_events::{Condition, Literal};
use pxml_workloads::random::{
    many_components_probtree, random_probtree, ProbTreeConfig, TreeConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn quick() -> bool {
    pxml_core::config::env::flag(pxml_core::config::env::BENCH_QUICK)
}

/// A 200-node tree mentioning `mentioned` events in its conditions, with
/// `declared - mentioned` additional events that no condition uses.
fn sparse_tree(declared: usize, mentioned: usize) -> ProbTree {
    let config = ProbTreeConfig {
        tree: TreeConfig {
            nodes: 200,
            max_fanout: 5,
            labels: 4,
        },
        events: mentioned,
        annotation_density: 0.5,
        max_literals: 2,
    };
    let mut rng = StdRng::seed_from_u64(0x50DA);
    let mut tree = random_probtree(&config, &mut rng);
    for _ in mentioned..declared {
        tree.events_mut().fresh(0.5);
    }
    tree
}

/// Engine on sparse trees: 40 declared events, 6–10 mentioned. The legacy
/// path refuses all of these at the default 2^24 guard (asserted once,
/// outside the timed region).
fn bench_engine_sparse(c: &mut Criterion) {
    let mut group = c.benchmark_group("worlds_engine_sparse_40_declared");
    let mentioned_sizes: &[usize] = if quick() { &[6] } else { &[6, 8, 10] };
    for &mentioned in mentioned_sizes {
        let tree = sparse_tree(40, mentioned);
        assert!(
            possible_worlds(&tree, 24).is_err(),
            "legacy full enumeration must refuse 2^40 valuations"
        );
        group.bench_with_input(BenchmarkId::from_parameter(mentioned), &tree, |b, tree| {
            let engine = WorldEngine::new(tree);
            b.iter(|| engine.normalized_worlds(24).unwrap());
        });
    }
    group.finish();
}

/// Dense trees (every declared event mentioned): legacy enumeration +
/// two-pass normalization vs the engine's streamed accumulator, at equal
/// `2^k` enumeration work.
fn bench_dense_legacy_vs_engine(c: &mut Criterion) {
    let sizes: &[usize] = if quick() { &[6] } else { &[6, 8, 10] };
    let mut group = c.benchmark_group("worlds_dense_legacy");
    for &events in sizes {
        let tree = sparse_tree(events, events);
        group.bench_with_input(BenchmarkId::from_parameter(events), &tree, |b, tree| {
            b.iter(|| possible_worlds(tree, 24).unwrap().normalized());
        });
    }
    group.finish();

    let mut group = c.benchmark_group("worlds_dense_engine");
    for &events in sizes {
        let tree = sparse_tree(events, events);
        group.bench_with_input(BenchmarkId::from_parameter(events), &tree, |b, tree| {
            let engine = WorldEngine::new(tree);
            b.iter(|| engine.normalized_worlds(24).unwrap());
        });
    }
    group.finish();
}

/// Many small components: 24 events in 8 co-occurrence components of 3.
/// The factorized shard executor enumerates `Σ_c 2^{|C_i|} = 64`
/// assignments where any joint walk needs `2^24 ≈ 16.7M` — a ratio of
/// 262144×, asserted below via the enumeration counter (not wall-clock).
/// The shard-fold cross-check (`condition_probability`) is also asserted
/// against the analytic product, untimed: the analytic `O(|literals|)`
/// path is the production one, the fold exists to validate the
/// decomposition.
fn bench_factorized_many_components(c: &mut Criterion) {
    let tree = many_components_probtree(8, 3);
    let engine = WorldEngine::new(&tree);
    let config = WorldEngineConfig::sequential();

    // Counter assertions, outside the timed region.
    let factorized = engine.sharded(&config, 20).unwrap();
    assert_eq!(
        factorized.states_enumerated(),
        8 * (1 << 3),
        "factorized path must enumerate Σ_c 2^{{|C_i|}} assignments"
    );
    assert_eq!(factorized.num_joint_assignments(), 1 << 24);
    let ratio = factorized.num_joint_assignments() / factorized.states_enumerated() as u128;
    assert!(
        ratio >= 1000,
        "factorized enumeration must be ≥1000× fewer assignments than joint (got {ratio}×)"
    );
    // The streamed (PR-2) engine refuses this tree outright at the same
    // budget: 24 relevant events > 20.
    assert!(engine.normalized_worlds(20).is_err());
    // Shard-fold cross-check against the analytic product.
    let first_component: Vec<_> = engine.components()[0].clone();
    let condition = Condition::from_literals(first_component.iter().map(|&e| Literal::pos(e)));
    let folded = factorized.condition_probability(&condition);
    assert!((folded - condition.probability(tree.events())).abs() < 1e-12);

    let mut group = c.benchmark_group("worlds_factorized_many_components");
    group.bench_with_input(BenchmarkId::new("shard_build", "8x3"), &tree, |b, tree| {
        let engine = WorldEngine::new(tree);
        b.iter(|| engine.sharded(&config, 20).unwrap());
    });
    group.finish();
}

/// Joint drain at feasible sizes: the factorized combine (shards, then the
/// cross product of the deduplicated classes) vs the streamed PR-2 engine
/// vs the legacy full enumeration, producing the same normalized PW set.
fn bench_factorized_vs_joint_drain(c: &mut Criterion) {
    let sizes: &[usize] = if quick() { &[3] } else { &[3, 4] };
    let config = WorldEngineConfig::sequential();
    for &components in sizes {
        let tree = many_components_probtree(components, 3);
        let engine = WorldEngine::new(&tree);
        // All three engines agree (asserted once, untimed).
        let factorized = engine
            .sharded(&config, 16)
            .unwrap()
            .normalized_worlds()
            .unwrap();
        let streamed = engine.normalized_worlds(16).unwrap();
        let legacy = possible_worlds(&tree, 16).unwrap().normalized();
        assert!(factorized.isomorphic(&streamed));
        assert!(factorized.isomorphic(&legacy));

        let mut group = c.benchmark_group("worlds_joint_factorized");
        group.bench_with_input(
            BenchmarkId::from_parameter(components * 3),
            &tree,
            |b, tree| {
                let engine = WorldEngine::new(tree);
                b.iter(|| {
                    engine
                        .sharded(&config, 16)
                        .unwrap()
                        .normalized_worlds()
                        .unwrap()
                });
            },
        );
        group.finish();

        let mut group = c.benchmark_group("worlds_joint_streamed");
        group.bench_with_input(
            BenchmarkId::from_parameter(components * 3),
            &tree,
            |b, tree| {
                let engine = WorldEngine::new(tree);
                b.iter(|| engine.normalized_worlds(16).unwrap());
            },
        );
        group.finish();
    }
}

fn config() -> Criterion {
    if quick() {
        Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(20))
            .measurement_time(Duration::from_millis(80))
    } else {
        Criterion::default()
            .sample_size(10)
            .warm_up_time(Duration::from_millis(400))
            .measurement_time(Duration::from_millis(1500))
    }
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_engine_sparse, bench_dense_legacy_vs_engine,
        bench_factorized_many_components, bench_factorized_vs_joint_drain
}
criterion_main!(benches);
