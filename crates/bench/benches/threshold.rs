//! E7 — Theorem 4: threshold restriction on the witness family. The time
//! and (see `tables --exp e7`) output size grow exponentially with `n`
//! because the restriction has `2^{2n}` surviving equiprobable worlds.
//!
//! Set `PXML_BENCH_QUICK=1` (as CI's bench-smoke job does) for a fast
//! smoke run with the small family sizes and a tiny iteration budget.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pxml_core::threshold::{restrict_to_threshold, restriction_as_probtree};
use pxml_workloads::paper::{theorem4_tree, theorem4_world_probability};

fn quick() -> bool {
    pxml_core::config::env::flag(pxml_core::config::env::BENCH_QUICK)
}

fn bench_threshold_restriction(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_threshold_restriction");
    let sizes: &[usize] = if quick() { &[1, 2] } else { &[1, 2, 3, 4, 5] };
    for &n in sizes {
        let tree = theorem4_tree(n);
        let threshold = theorem4_world_probability(n);
        group.bench_with_input(
            BenchmarkId::from_parameter(2 * n),
            &(tree, threshold),
            |b, (tree, threshold)| {
                b.iter(|| restrict_to_threshold(tree, *threshold, 24).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_threshold_reencoding(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_threshold_as_probtree");
    let sizes: &[usize] = if quick() { &[1, 2] } else { &[1, 2, 3, 4] };
    for &n in sizes {
        let tree = theorem4_tree(n);
        let threshold = theorem4_world_probability(n);
        group.bench_with_input(
            BenchmarkId::from_parameter(2 * n),
            &(tree, threshold),
            |b, (tree, threshold)| {
                b.iter(|| {
                    restriction_as_probtree(tree, *threshold, 24)
                        .unwrap()
                        .unwrap()
                });
            },
        );
    }
    group.finish();
}

fn config() -> Criterion {
    if quick() {
        Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(20))
            .measurement_time(Duration::from_millis(80))
    } else {
        Criterion::default()
            .sample_size(10)
            .warm_up_time(Duration::from_millis(400))
            .measurement_time(Duration::from_millis(1500))
    }
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_threshold_restriction, bench_threshold_reencoding
}
criterion_main!(benches);
