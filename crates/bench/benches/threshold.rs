//! E7 — Theorem 4: threshold restriction on the witness family. The time
//! and (see `tables --exp e7`) output size grow exponentially with `n`
//! because the restriction has `2^{2n}` surviving equiprobable worlds.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pxml_core::threshold::{restrict_to_threshold, restriction_as_probtree};
use pxml_workloads::paper::{theorem4_tree, theorem4_world_probability};

fn bench_threshold_restriction(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_threshold_restriction");
    for n in [1usize, 2, 3, 4, 5] {
        let tree = theorem4_tree(n);
        let threshold = theorem4_world_probability(n);
        group.bench_with_input(
            BenchmarkId::from_parameter(2 * n),
            &(tree, threshold),
            |b, (tree, threshold)| {
                b.iter(|| restrict_to_threshold(tree, *threshold, 24).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_threshold_reencoding(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_threshold_as_probtree");
    for n in [1usize, 2, 3, 4] {
        let tree = theorem4_tree(n);
        let threshold = theorem4_world_probability(n);
        group.bench_with_input(
            BenchmarkId::from_parameter(2 * n),
            &(tree, threshold),
            |b, (tree, threshold)| {
                b.iter(|| {
                    restriction_as_probtree(tree, *threshold, 24)
                        .unwrap()
                        .unwrap()
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_millis(1500));
    targets = bench_threshold_restriction, bench_threshold_reencoding
}
criterion_main!(benches);
