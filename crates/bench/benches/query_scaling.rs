//! E3 — Theorem 1 / Proposition 2 (queries): locally monotone query
//! evaluation over prob-trees is polynomial, with cost
//! `time(Q(t)) + O(|Q(t)|·|T|)` on top of the plain data-tree evaluation.
//!
//! Two groups: the query on the bare data tree (the `time(Q(t))` term) and
//! the same query on the prob-tree (adds the condition collection and
//! probability evaluation). Both should scale polynomially (roughly
//! linearly for this fixed two-step pattern) in the tree size.
//!
//! Set `PXML_BENCH_QUICK=1` (as CI's bench-smoke job does) for a fast
//! smoke run over the two smallest tree sizes.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pxml_bench::{rng, scaling_probtree, scaling_query, SCALING_SIZES};
use pxml_core::query::prob::query_probtree;
use pxml_core::query::Query;

fn quick() -> bool {
    std::env::var_os("PXML_BENCH_QUICK").is_some()
}

fn bench_query_scaling(c: &mut Criterion) {
    let query = scaling_query();
    let mut r = rng();
    let sizes: &[usize] = if quick() {
        &SCALING_SIZES[..2]
    } else {
        &SCALING_SIZES
    };
    let trees: Vec<_> = sizes
        .iter()
        .map(|&n| (n, scaling_probtree(n, &mut r)))
        .collect();

    let mut group = c.benchmark_group("e3_query_data_tree");
    for (n, tree) in &trees {
        group.bench_with_input(BenchmarkId::from_parameter(n), tree, |b, tree| {
            b.iter(|| query.evaluate(tree.tree()));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("e3_query_probtree");
    for (n, tree) in &trees {
        group.bench_with_input(BenchmarkId::from_parameter(n), tree, |b, tree| {
            b.iter(|| query_probtree(&query, tree));
        });
    }
    group.finish();
}

fn config() -> Criterion {
    if quick() {
        Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(20))
            .measurement_time(Duration::from_millis(80))
    } else {
        Criterion::default()
            .sample_size(20)
            .warm_up_time(Duration::from_millis(400))
            .measurement_time(Duration::from_millis(1500))
    }
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_query_scaling
}
criterion_main!(benches);
