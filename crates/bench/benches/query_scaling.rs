//! E3 — Theorem 1 / Proposition 2 (queries): locally monotone query
//! evaluation over prob-trees is polynomial, with cost
//! `time(Q(t)) + O(|Q(t)|·|T|)` on top of the plain data-tree evaluation.
//!
//! Four groups:
//!
//! * `e3_query_data_tree` — the query on the bare data tree (the
//!   `time(Q(t))` term);
//! * `e3_query_probtree` — the same query on the prob-tree via the
//!   one-shot wrapper (adds the condition unions and probability
//!   evaluation);
//! * `e3_prepared_vs_unprepared` — a top-10 request served from a reused
//!   `PreparedQuery` vs paying `prepare` on every call: the prepared path
//!   skips matching, condition unions and (cached) probabilities;
//! * `e3_topk_vs_full_sort` — top-10 via the bounded binary heap vs the
//!   full-sort reference ranking, from the same prepared state.
//!
//! Plus `e14_maintain_vs_reprepare` — the live-view access pattern of the
//! warehouse scenario: the endpoint+contact monitoring query served after
//! every extractor round, by per-round fresh prepares vs one
//! incrementally maintained `PreparedQuery`.
//!
//! Plus `e15_semiring_overhead` — the generic provenance path on the
//! deletion blow-up family (retract/re-claim rounds grow `¬w` chains in
//! the answers' conditions): before timing, the generic `Probability`
//! drain is asserted **bit-identical** to the pre-refactor f64 fast
//! path; the timed arms then drain the same prepared state under
//! `Probability`, `Possibility` (boolean ops instead of float
//! multiplies) and `Lineage`.
//!
//! Before timing, the heap-vs-sort and threshold short-circuit comparison
//! counters are asserted (untimed) on the largest fixture, and the
//! maintenance counters are asserted on the warehouse fixture (no
//! fallback on off-footprint rounds; ≥5x fewer union rebuilds than
//! per-round re-preparing).
//!
//! Set `PXML_BENCH_QUICK=1` (as CI's bench-smoke job does) for a fast
//! smoke run over the two smallest tree sizes.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pxml_bench::{rng, scaling_probtree, scaling_query, SCALING_SIZES};
use pxml_core::query::pattern::PatternQuery;
use pxml_core::query::Query;
use pxml_core::update::{ProbabilisticUpdate, UpdateEngine, UpdateOperation};
use pxml_core::{Document, MaintainOutcome, QueryEngine};
use pxml_events::{Lineage, Possibility, Probability};
use pxml_tree::DataTree;
use pxml_workloads::warehouse::{services_with_endpoint_and_contact, skeleton};

fn quick() -> bool {
    pxml_core::config::env::flag(pxml_core::config::env::BENCH_QUICK)
}

/// Untimed sanity assertions on the selection counters: the bounded heap
/// must do fewer rank comparisons than the full sort, and a selective
/// threshold must sort only its qualifying answers.
fn assert_selection_counters(tree: &pxml_core::ProbTree, query: &dyn Query) {
    let prepared = QueryEngine::new().prepare(tree, query);
    let full = prepared.ranked();
    if full.len() < 64 {
        return; // not enough answers for a meaningful ratio
    }
    let top = prepared.top_k(10);
    assert!(
        top.stats().comparisons < full.stats().comparisons / 2,
        "bounded heap must beat the full sort: {} vs {} comparisons over {} answers",
        top.stats().comparisons,
        full.stats().comparisons,
        full.len()
    );
    // A threshold keeping only the ~top answers: the short-circuit path
    // must not pay the full ranking sort (the legacy path sorted all
    // answers before filtering). The ratio depends on how many answers
    // tie at the cutoff, so only strict improvement is asserted here —
    // the sharp /4 bound lives in the engine's unit tests.
    let cutoff = top.as_slice()[top.len() - 1].probability;
    let selective = prepared.above(cutoff);
    assert!(
        selective.stats().comparisons < full.stats().comparisons,
        "threshold short-circuit must beat the full sort: {} vs {} comparisons",
        selective.stats().comparisons,
        full.stats().comparisons
    );
    assert!(selective.len() >= top.len());
}

fn bench_query_scaling(c: &mut Criterion) {
    let query = scaling_query();
    let mut r = rng();
    let sizes: &[usize] = if quick() {
        &SCALING_SIZES[..2]
    } else {
        &SCALING_SIZES
    };
    let trees: Vec<_> = sizes
        .iter()
        .map(|&n| (n, scaling_probtree(n, &mut r)))
        .collect();

    let (_, largest) = trees.last().expect("at least one scaling size");
    assert_selection_counters(largest, &query);

    let mut group = c.benchmark_group("e3_query_data_tree");
    for (n, tree) in &trees {
        group.bench_with_input(BenchmarkId::from_parameter(n), tree, |b, tree| {
            b.iter(|| query.evaluate(tree.tree()));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("e3_query_probtree");
    for (n, tree) in &trees {
        group.bench_with_input(BenchmarkId::from_parameter(n), tree, |b, tree| {
            b.iter(|| {
                QueryEngine::new()
                    .prepare(tree, &query)
                    .answers()
                    .collect::<Vec<_>>()
            });
        });
    }
    group.finish();

    // Prepared reuse: the ranked-retrieval access pattern — one prepare,
    // many top-k requests — vs re-preparing per request.
    let engine = QueryEngine::new();
    let mut group = c.benchmark_group("e3_prepared_vs_unprepared");
    for (n, tree) in &trees {
        group.bench_with_input(BenchmarkId::new("unprepared", n), tree, |b, tree| {
            b.iter(|| engine.prepare(tree, &query).top_k(10));
        });
        group.bench_with_input(BenchmarkId::new("prepared", n), tree, |b, tree| {
            let prepared = engine.prepare(tree, &query);
            prepared.top_k(10); // warm the probability cache once
            b.iter(|| prepared.top_k(10));
        });
    }
    group.finish();

    // Bounded-heap top-k vs the full-sort reference over one prepared
    // state (probabilities cached, so the selection cost dominates).
    let mut group = c.benchmark_group("e3_topk_vs_full_sort");
    for (n, tree) in &trees {
        let prepared = engine.prepare(tree, &query);
        prepared.ranked(); // warm probability + tie-key caches
        group.bench_with_input(
            BenchmarkId::new("top10_heap", n),
            &prepared,
            |b, prepared| {
                b.iter(|| prepared.top_k(10));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("full_sort", n),
            &prepared,
            |b, prepared| {
                b.iter(|| prepared.ranked());
            },
        );
    }
    group.finish();
}

/// One extractor round: claim a `label` fact (with a distinct per-round
/// value leaf) under every service.
fn claim_fact(label: &str, round: usize, confidence: f64) -> ProbabilisticUpdate {
    let mut fact = DataTree::new(label);
    let fact_root = fact.root();
    fact.add_child(fact_root, format!("value{round}"));
    let query = PatternQuery::new(Some("service"));
    let at = query.root();
    ProbabilisticUpdate::new(UpdateOperation::insert(query, at, fact), confidence)
}

/// A warehouse already carrying endpoint and contact facts (so the
/// endpoint+contact query has answers) plus a keyword-only extraction
/// script — every step off the query's {service, endpoint, contact}
/// footprint, so maintenance must patch every round.
fn maintenance_fixture(services: usize, rounds: usize) -> (Document, Vec<ProbabilisticUpdate>) {
    let update_engine = UpdateEngine::new();
    let mut doc = Document::new(skeleton(services));
    update_engine.apply_doc(&mut doc, &claim_fact("endpoint", 0, 0.9));
    update_engine.apply_doc(&mut doc, &claim_fact("contact", 0, 0.8));
    let script: Vec<ProbabilisticUpdate> = (1..=rounds)
        .map(|round| claim_fact("keyword", round, 0.5 + 0.4 * (round as f64 / rounds as f64)))
        .collect();
    (doc, script)
}

/// Untimed counter assertions for the incremental-maintenance contract:
/// keyword-only rounds never fall back, and patching rebuilds at least
/// 5x fewer condition unions than re-preparing every round would.
fn assert_maintenance_counters(services: usize, rounds: usize) {
    let (mut doc, script) = maintenance_fixture(services, rounds);
    let query = services_with_endpoint_and_contact();
    let query_engine = QueryEngine::new();
    let update_engine = UpdateEngine::new();
    let mut prepared = query_engine.prepare_doc(&doc, &query);
    assert!(!prepared.is_empty(), "the seeded warehouse has answers");
    let mut reprepare_union_work = 0usize;
    for update in &script {
        update_engine.apply_doc(&mut doc, update);
        let outcome = prepared.maintain(&doc).expect("document-backed state");
        assert!(
            matches!(outcome, MaintainOutcome::Patched { .. }),
            "keyword rounds are off-footprint and must patch, got {outcome:?}"
        );
        // A fresh prepare recomputes one condition union per answer.
        reprepare_union_work += query_engine.prepare_doc(&doc, &query).len();
    }
    let stats = prepared.maintenance_stats();
    assert_eq!(stats.fallbacks, 0, "no silent fallback on keyword rounds");
    assert_eq!(stats.steps_patched, rounds);
    assert!(
        stats.unions_rebuilt * 5 <= reprepare_union_work,
        "maintenance must rebuild at least 5x fewer unions than per-round \
         re-preparing: {} rebuilt vs {} across {} fresh prepares",
        stats.unions_rebuilt,
        reprepare_union_work,
        rounds
    );
}

/// E14 — incremental view maintenance: serving the endpoint+contact
/// monitoring query after every extractor round, either by re-preparing
/// from scratch each round or by patching one live `PreparedQuery`
/// through the document's update deltas. Both arms replay the identical
/// scenario (document construction and update application included), so
/// the measured difference is exactly prepare-per-round vs
/// maintain-per-round.
fn bench_maintenance(c: &mut Criterion) {
    let (services, rounds) = if quick() { (8, 4) } else { (24, 10) };
    assert_maintenance_counters(services, rounds);

    let query = services_with_endpoint_and_contact();
    let query_engine = QueryEngine::new();
    let update_engine = UpdateEngine::new();
    let mut group = c.benchmark_group("e14_maintain_vs_reprepare");
    group.bench_function(format!("reprepare_every_round/{services}"), |b| {
        b.iter(|| {
            let (mut doc, script) = maintenance_fixture(services, rounds);
            let mut total = 0.0f64;
            for update in &script {
                update_engine.apply_doc(&mut doc, update);
                total += query_engine.prepare_doc(&doc, &query).expected_matches();
            }
            total
        });
    });
    group.bench_function(format!("maintain_across_rounds/{services}"), |b| {
        b.iter(|| {
            let (mut doc, script) = maintenance_fixture(services, rounds);
            let mut prepared = query_engine.prepare_doc(&doc, &query);
            let mut total = 0.0f64;
            for update in &script {
                update_engine.apply_doc(&mut doc, update);
                prepared.maintain(&doc).expect("document-backed state");
                total += prepared.expected_matches();
            }
            total
        });
    });
    group.finish();
}

/// The deletion blow-up family: retract/re-claim rounds against the
/// `endpoint` facts grow `¬w` survivor chains in the conditions the
/// endpoint+contact query unions per answer — the family where
/// per-literal semiring cost dominates the drain.
fn blowup_fixture(rounds: usize) -> pxml_core::ProbTree {
    let engine = UpdateEngine::new();
    let mut tree = skeleton(6);
    tree = engine.apply(&tree, &claim_fact("endpoint", 0, 0.9)).0;
    tree = engine.apply(&tree, &claim_fact("contact", 0, 0.8)).0;
    for round in 1..=rounds {
        let mut retract = PatternQuery::new(Some("service"));
        let fact = retract.add_child(retract.root(), "endpoint");
        let delete = ProbabilisticUpdate::new(UpdateOperation::delete(retract, fact), 0.3);
        tree = engine.apply(&tree, &delete).0;
        tree = engine.apply(&tree, &claim_fact("endpoint", round, 0.9)).0;
    }
    tree
}

/// Untimed contract assertion: draining the prepared state through the
/// generic `Probability` semiring returns, answer for answer, the exact
/// bits of the pre-refactor f64 fast path.
fn assert_probability_bit_identity(tree: &pxml_core::ProbTree, query: &dyn Query) {
    let prepared = QueryEngine::new().prepare(tree, query);
    let generic = prepared.answers_in(&Probability);
    let fast: Vec<_> = prepared.answers().collect();
    assert_eq!(generic.len(), fast.len());
    for ((_, value), answer) in generic.iter().zip(&fast) {
        assert_eq!(
            value.to_bits(),
            answer.probability.to_bits(),
            "generic Probability must be bit-identical to the f64 fast path"
        );
    }
}

/// E15 — semiring-generic provenance: one prepared match set drained
/// under three semirings. `Probability` re-folds f64 products,
/// `Possibility` folds booleans over the same literals, `Lineage`
/// accumulates event sets — the spread is the cost of genericity.
fn bench_semiring_overhead(c: &mut Criterion) {
    let rounds = if quick() { 4 } else { 12 };
    let tree = blowup_fixture(rounds);
    let query = services_with_endpoint_and_contact();
    assert_probability_bit_identity(&tree, &query);

    let engine = QueryEngine::new();
    let prepared = engine.prepare(&tree, &query);
    assert!(!prepared.is_empty(), "the blow-up fixture has answers");
    let mut group = c.benchmark_group("e15_semiring_overhead");
    group.bench_function(format!("probability_generic/{rounds}"), |b| {
        b.iter(|| prepared.answers_in(&Probability));
    });
    group.bench_function(format!("possibility/{rounds}"), |b| {
        b.iter(|| prepared.answers_in(&Possibility));
    });
    group.bench_function(format!("lineage/{rounds}"), |b| {
        b.iter(|| prepared.answers_in(&Lineage));
    });
    group.finish();
}

fn config() -> Criterion {
    if quick() {
        Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(20))
            .measurement_time(Duration::from_millis(80))
    } else {
        Criterion::default()
            .sample_size(20)
            .warm_up_time(Duration::from_millis(400))
            .measurement_time(Duration::from_millis(1500))
    }
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_query_scaling, bench_maintenance, bench_semiring_overhead
}
criterion_main!(benches);
