//! E3 — Theorem 1 / Proposition 2 (queries): locally monotone query
//! evaluation over prob-trees is polynomial, with cost
//! `time(Q(t)) + O(|Q(t)|·|T|)` on top of the plain data-tree evaluation.
//!
//! Four groups:
//!
//! * `e3_query_data_tree` — the query on the bare data tree (the
//!   `time(Q(t))` term);
//! * `e3_query_probtree` — the same query on the prob-tree via the
//!   one-shot wrapper (adds the condition unions and probability
//!   evaluation);
//! * `e3_prepared_vs_unprepared` — a top-10 request served from a reused
//!   `PreparedQuery` vs paying `prepare` on every call: the prepared path
//!   skips matching, condition unions and (cached) probabilities;
//! * `e3_topk_vs_full_sort` — top-10 via the bounded binary heap vs the
//!   full-sort reference ranking, from the same prepared state.
//!
//! Before timing, the heap-vs-sort and threshold short-circuit comparison
//! counters are asserted (untimed) on the largest fixture.
//!
//! Set `PXML_BENCH_QUICK=1` (as CI's bench-smoke job does) for a fast
//! smoke run over the two smallest tree sizes.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pxml_bench::{rng, scaling_probtree, scaling_query, SCALING_SIZES};
use pxml_core::query::prob::query_probtree;
use pxml_core::query::Query;
use pxml_core::QueryEngine;

fn quick() -> bool {
    std::env::var_os("PXML_BENCH_QUICK").is_some()
}

/// Untimed sanity assertions on the selection counters: the bounded heap
/// must do fewer rank comparisons than the full sort, and a selective
/// threshold must sort only its qualifying answers.
fn assert_selection_counters(tree: &pxml_core::ProbTree, query: &dyn Query) {
    let prepared = QueryEngine::new().prepare(tree, query);
    let full = prepared.ranked();
    if full.len() < 64 {
        return; // not enough answers for a meaningful ratio
    }
    let top = prepared.top_k(10);
    assert!(
        top.stats().comparisons < full.stats().comparisons / 2,
        "bounded heap must beat the full sort: {} vs {} comparisons over {} answers",
        top.stats().comparisons,
        full.stats().comparisons,
        full.len()
    );
    // A threshold keeping only the ~top answers: the short-circuit path
    // must not pay the full ranking sort (the legacy path sorted all
    // answers before filtering). The ratio depends on how many answers
    // tie at the cutoff, so only strict improvement is asserted here —
    // the sharp /4 bound lives in the engine's unit tests.
    let cutoff = top.as_slice()[top.len() - 1].probability;
    let selective = prepared.above(cutoff);
    assert!(
        selective.stats().comparisons < full.stats().comparisons,
        "threshold short-circuit must beat the full sort: {} vs {} comparisons",
        selective.stats().comparisons,
        full.stats().comparisons
    );
    assert!(selective.len() >= top.len());
}

fn bench_query_scaling(c: &mut Criterion) {
    let query = scaling_query();
    let mut r = rng();
    let sizes: &[usize] = if quick() {
        &SCALING_SIZES[..2]
    } else {
        &SCALING_SIZES
    };
    let trees: Vec<_> = sizes
        .iter()
        .map(|&n| (n, scaling_probtree(n, &mut r)))
        .collect();

    let (_, largest) = trees.last().expect("at least one scaling size");
    assert_selection_counters(largest, &query);

    let mut group = c.benchmark_group("e3_query_data_tree");
    for (n, tree) in &trees {
        group.bench_with_input(BenchmarkId::from_parameter(n), tree, |b, tree| {
            b.iter(|| query.evaluate(tree.tree()));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("e3_query_probtree");
    for (n, tree) in &trees {
        group.bench_with_input(BenchmarkId::from_parameter(n), tree, |b, tree| {
            b.iter(|| query_probtree(&query, tree));
        });
    }
    group.finish();

    // Prepared reuse: the ranked-retrieval access pattern — one prepare,
    // many top-k requests — vs re-preparing per request.
    let engine = QueryEngine::new();
    let mut group = c.benchmark_group("e3_prepared_vs_unprepared");
    for (n, tree) in &trees {
        group.bench_with_input(BenchmarkId::new("unprepared", n), tree, |b, tree| {
            b.iter(|| engine.prepare(tree, &query).top_k(10));
        });
        group.bench_with_input(BenchmarkId::new("prepared", n), tree, |b, tree| {
            let prepared = engine.prepare(tree, &query);
            prepared.top_k(10); // warm the probability cache once
            b.iter(|| prepared.top_k(10));
        });
    }
    group.finish();

    // Bounded-heap top-k vs the full-sort reference over one prepared
    // state (probabilities cached, so the selection cost dominates).
    let mut group = c.benchmark_group("e3_topk_vs_full_sort");
    for (n, tree) in &trees {
        let prepared = engine.prepare(tree, &query);
        prepared.ranked(); // warm probability + tie-key caches
        group.bench_with_input(
            BenchmarkId::new("top10_heap", n),
            &prepared,
            |b, prepared| {
                b.iter(|| prepared.top_k(10));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("full_sort", n),
            &prepared,
            |b, prepared| {
                b.iter(|| prepared.ranked());
            },
        );
    }
    group.finish();
}

fn config() -> Criterion {
    if quick() {
        Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(20))
            .measurement_time(Duration::from_millis(80))
    } else {
        Criterion::default()
            .sample_size(20)
            .warm_up_time(Duration::from_millis(400))
            .measurement_time(Duration::from_millis(1500))
    }
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_query_scaling
}
criterion_main!(benches);
