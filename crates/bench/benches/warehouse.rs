//! E16 — the warehouse server: shared view maintenance and the concurrent
//! read path.
//!
//! The untimed **invariant block** first proves the maintenance hub's
//! sharing claim with exact counters: under a traffic shape of `R` read
//! rounds × `D` off-footprint commits per round × `V` registered views,
//! the hub performs `V × R` maintenance passes (one composed window per
//! stale view per read round) where the pre-hub pattern — every view
//! re-threading every delta — performs `V × D × R`. The remap-work ratio
//! is asserted (`≥ 4×` with `D = 8`, leaving slack), along with the raw
//! hub counters.
//!
//! The timed groups then measure the served read path as the document
//! grows, and the O(1) epoch-snapshot pin contrasted against it.
//!
//! Set `PXML_BENCH_QUICK=1` (as CI's `bench-smoke` job does) for a fast
//! smoke run; the invariant block runs (and asserts) in both modes.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pxml_core::update::{ProbabilisticUpdate, UpdateEngine, UpdateOperation};
use pxml_core::{Document, PatternQuery, QueryEngine};
use pxml_server::Warehouse;
use pxml_tree::DataTree;
use pxml_workloads::warehouse::{services_with_endpoint_and_contact, skeleton};

fn quick() -> bool {
    pxml_core::config::env::flag(pxml_core::config::env::BENCH_QUICK)
}

/// Views registered per document.
const VIEWS: usize = 4;
/// Read rounds in the invariant traffic shape.
const ROUNDS: usize = 5;
/// Off-footprint commits between read rounds.
const DELTAS_PER_ROUND: usize = 8;

fn insert_under(label: &str, inserted: &str, confidence: f64) -> ProbabilisticUpdate {
    let q = PatternQuery::new(Some(label));
    let at = q.root();
    ProbabilisticUpdate::new(
        UpdateOperation::insert(q, at, DataTree::new(inserted)),
        confidence,
    )
}

/// Gives every service an `endpoint` and a `contact` so the query has
/// live answers; returns the two content updates.
fn content_updates() -> [ProbabilisticUpdate; 2] {
    [
        insert_under("service", "endpoint", 0.9),
        insert_under("service", "contact", 0.8),
    ]
}

/// A warehouse with one settled document of `services` services and
/// `VIEWS` registered (and already-served, hence current) views.
fn settled_warehouse(services: usize) -> Warehouse {
    let warehouse = Warehouse::new();
    warehouse.register("doc", skeleton(services)).unwrap();
    for update in &content_updates() {
        warehouse.commit("doc", update).unwrap();
    }
    let query = Arc::new(services_with_endpoint_and_contact());
    for v in 0..VIEWS {
        warehouse
            .register_view("doc", &format!("v{v}"), query.clone())
            .unwrap();
    }
    for v in 0..VIEWS {
        warehouse.expected_matches("doc", &format!("v{v}")).unwrap();
    }
    warehouse
}

/// The invariant block: hub counters under the `R × D × V` traffic shape,
/// against the pre-hub per-view-per-delta baseline. Returns the settled
/// warehouse for the timed read-path group.
fn hub_sharing_invariants(services: usize) -> Warehouse {
    // Hub side: D off-footprint commits per round, then one read of each
    // view. Maintenance happens lazily on the reads, once per view per
    // round, through one composed window per round.
    let warehouse = settled_warehouse(services);
    for _ in 0..ROUNDS {
        for _ in 0..DELTAS_PER_ROUND {
            warehouse
                .commit("doc", &insert_under("service", "keyword", 0.7))
                .unwrap();
        }
        for v in 0..VIEWS {
            warehouse.expected_matches("doc", &format!("v{v}")).unwrap();
        }
    }
    let hub = warehouse.hub_stats("doc").unwrap();
    let commits = (2 + ROUNDS * DELTAS_PER_ROUND) as u64;
    assert_eq!(hub.deltas_observed, commits);
    assert_eq!(
        hub.flags_fanned,
        ((ROUNDS * DELTAS_PER_ROUND) * VIEWS) as u64,
        "setup commits precede view registration"
    );
    assert_eq!(
        hub.view_maintains,
        (VIEWS * ROUNDS) as u64,
        "lazy: one maintenance pass per stale view per read round, not per view-delta pair"
    );
    assert_eq!(
        hub.windows_composed, ROUNDS as u64,
        "shared: all views lagging by the same span reuse one composed window"
    );

    // Baseline (the pre-hub pattern): every view re-threads every delta.
    let engine = UpdateEngine::new();
    let queries = QueryEngine::new();
    let query = services_with_endpoint_and_contact();
    let mut doc = Document::new(skeleton(services));
    for update in &content_updates() {
        engine.apply_doc(&mut doc, update);
    }
    let mut views: Vec<_> = (0..VIEWS)
        .map(|_| queries.prepare_doc(&doc, &query))
        .collect();
    for _ in 0..ROUNDS {
        for _ in 0..DELTAS_PER_ROUND {
            engine.apply_doc(&mut doc, &insert_under("service", "keyword", 0.7));
            for view in &mut views {
                view.maintain(&doc).unwrap();
            }
        }
    }
    let baseline_remapped: u64 = views
        .iter()
        .map(|view| view.maintenance_stats().answers_remapped as u64)
        .sum();

    assert!(
        baseline_remapped >= 4 * hub.answers_remapped,
        "hub shares the delta thread: baseline remapped {baseline_remapped} answers, \
         hub only {} (D = {DELTAS_PER_ROUND} deltas per composed window)",
        hub.answers_remapped
    );
    warehouse
}

/// E16a: the served read path — a current view behind the hub — as the
/// document grows. The invariant block runs first (it asserts; a failure
/// fails the bench) and its warehouse is reused for the smallest size.
fn bench_served_reads(c: &mut Criterion) {
    let sizes: &[usize] = if quick() { &[4, 8] } else { &[4, 8, 16, 32] };
    let mut group = c.benchmark_group("e16_warehouse_served_read");
    for (i, &services) in sizes.iter().enumerate() {
        let warehouse = if i == 0 {
            hub_sharing_invariants(services)
        } else {
            settled_warehouse(services)
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(services),
            &warehouse,
            |b, warehouse| {
                b.iter(|| warehouse.expected_matches("doc", "v0").unwrap());
            },
        );
    }
    group.finish();
}

/// E16b: pinning an epoch snapshot is O(1) — an `Arc` clone under the
/// reader lock — regardless of document size.
fn bench_snapshot_pin(c: &mut Criterion) {
    let sizes: &[usize] = if quick() { &[4, 8] } else { &[4, 8, 16, 32] };
    let mut group = c.benchmark_group("e16_warehouse_snapshot_pin");
    for &services in sizes {
        let warehouse = settled_warehouse(services);
        group.bench_with_input(
            BenchmarkId::from_parameter(services),
            &warehouse,
            |b, warehouse| {
                b.iter(|| warehouse.snapshot("doc").unwrap());
            },
        );
    }
    group.finish();
}

/// E16c: the commit path — stage under shared access, swap under the
/// short writer lock, fan dirty flags — for an off-footprint insert.
fn bench_commit_path(c: &mut Criterion) {
    let sizes: &[usize] = if quick() { &[4, 8] } else { &[4, 8, 16, 32] };
    let mut group = c.benchmark_group("e16_warehouse_commit");
    for &services in sizes {
        let warehouse = settled_warehouse(services);
        let update = insert_under("service", "keyword", 0.7);
        group.bench_with_input(
            BenchmarkId::from_parameter(services),
            &warehouse,
            |b, warehouse| {
                b.iter(|| warehouse.commit("doc", &update).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_millis(1500));
    targets = bench_served_reads, bench_snapshot_pin, bench_commit_path
}
criterion_main!(benches);
