//! # pxml-analysis — static analysis for probabilistic XML workloads
//!
//! The engines in `pxml-core` pay exponential costs at well-understood
//! places: Theorem 1's possible-world cross-check, Theorem 3's deletion
//! blow-up, and the `Σ_c 2^{|C_i|}` factorized world enumeration. This
//! crate predicts those costs — and certifies the preconditions the
//! engines rely on — **before** anything runs, from syntax alone:
//!
//! - [`query`]: O(|query|) local-monotonicity certificates
//!   ([`pxml_core::MonotonicityCertificate`]), root-to-leaf spine
//!   extraction, and DTD-based satisfiability ("this pattern is
//!   statically empty under the warehouse DTD").
//! - [`script`]: dead-step detection, per-step survivor-copy forecasts
//!   (certifying the `1 + 2^n` shared-first vs `3^n` naive deletion
//!   costs of Theorem 3), and footprint-disjointness certificates for
//!   step reordering.
//! - [`census`]: the co-occurrence component census predicting the
//!   executor's exact `states_enumerated` counter, a tractability
//!   verdict against an event budget, and condition lints (π = 1
//!   pinnable events, Possibility-semiring-zero conditions).
//! - [`semiring`]: per-query/script provenance-semiring facts — lineage
//!   width bounds, `TopKProofs` exactness, and which semirings make
//!   certainty pruning a non-identity.
//!
//! Every prediction is property-tested against the corresponding engine
//! counter; the [`StaticAnalyzer`] is the front door and the
//! `pxml-analyze` binary lints the paper/warehouse workload corpus.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod census;
pub mod query;
pub mod report;
pub mod script;
pub mod semiring;

pub use census::{WorldsAnalysis, WorldsLint};
pub use query::{PatternSpine, QueryAnalysis, Satisfiability};
pub use report::AnalysisReport;
pub use script::{
    predict_maintenance, MaintenancePrediction, ScriptAnalysis, StepAnalysis, StepFootprint,
};
pub use semiring::{
    query_semiring_support, script_semiring_support, QuerySemiringSupport, ScriptSemiringSupport,
    SUPPORTED_SEMIRINGS,
};

use pxml_core::query::pattern::PatternQuery;
use pxml_core::query::Query;
use pxml_core::update::{UpdateEngine, UpdateEngineConfig, UpdateScript};
use pxml_core::{ProbTree, DEFAULT_MAX_EXHAUSTIVE_EVENTS};
use pxml_dtd::Dtd;

/// The front door: holds the ambient knowledge (DTD, event budget,
/// update-engine configuration) and produces [`AnalysisReport`]s.
#[derive(Clone, Debug)]
pub struct StaticAnalyzer {
    dtd: Option<Dtd>,
    max_events: usize,
    update_config: UpdateEngineConfig,
}

impl Default for StaticAnalyzer {
    fn default() -> Self {
        StaticAnalyzer::new()
    }
}

impl StaticAnalyzer {
    /// An analyzer with no DTD, the default event budget and the default
    /// (shared-first) update configuration.
    pub fn new() -> Self {
        StaticAnalyzer {
            dtd: None,
            max_events: DEFAULT_MAX_EXHAUSTIVE_EVENTS,
            update_config: UpdateEngineConfig::default(),
        }
    }

    /// Registers the DTD the documents are expected to respect;
    /// satisfiability and deletion footprints become available.
    pub fn with_dtd(mut self, dtd: Dtd) -> Self {
        self.dtd = Some(dtd);
        self
    }

    /// Sets the event budget the tractability verdict is computed
    /// against.
    pub fn with_max_events(mut self, max_events: usize) -> Self {
        self.max_events = max_events;
        self
    }

    /// Sets the update-engine configuration assumed by script forecasts
    /// (shared-first chains change the predicted survivor counts).
    pub fn with_update_config(mut self, config: UpdateEngineConfig) -> Self {
        self.update_config = config;
        self
    }

    /// The registered DTD, if any.
    pub fn dtd(&self) -> Option<&Dtd> {
        self.dtd.as_ref()
    }

    /// Analyzes one pattern query (certificate + satisfiability +
    /// spines).
    pub fn analyze_pattern(&self, query: &PatternQuery) -> QueryAnalysis {
        query::analyze_pattern(query, self.dtd.as_ref())
    }

    /// Analyzes an arbitrary query (certificate only).
    pub fn analyze_query(&self, query: &dyn Query) -> QueryAnalysis {
        query::analyze_query(query)
    }

    /// Analyzes an update script against its initial tree.
    pub fn analyze_script(&self, tree: &ProbTree, script: &UpdateScript) -> ScriptAnalysis {
        let engine = UpdateEngine::with_config(self.update_config.clone());
        script::analyze_script(&engine, tree, script, self.dtd.as_ref())
    }

    /// Computes the world census of a prob-tree.
    pub fn analyze_worlds(&self, tree: &ProbTree) -> WorldsAnalysis {
        census::analyze_worlds(tree, self.max_events)
    }

    /// Builds the combined report: pattern analyses for `queries`, a
    /// script analysis when `script` is given, and the world census when
    /// `tree` is given.
    pub fn report(
        &self,
        tree: Option<&ProbTree>,
        queries: &[&PatternQuery],
        script: Option<&UpdateScript>,
    ) -> AnalysisReport {
        AnalysisReport {
            queries: queries.iter().map(|q| self.analyze_pattern(q)).collect(),
            script: match (tree, script) {
                (Some(tree), Some(script)) => Some(self.analyze_script(tree, script)),
                _ => None,
            },
            worlds: tree.map(|t| self.analyze_worlds(t)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxml_core::{MonotonicityCertificate, QueryEngine};
    use pxml_workloads::paper::{figure1, theorem1_query_battery};

    #[test]
    fn battery_queries_are_all_certified_and_tractable_on_figure1() {
        let analyzer = StaticAnalyzer::new();
        let tree = figure1();
        let battery = theorem1_query_battery();
        let refs: Vec<&PatternQuery> = battery.iter().collect();
        let report = analyzer.report(Some(&tree), &refs, None);
        assert!(report.is_clean());
        for analysis in &report.queries {
            assert_eq!(analysis.certificate, MonotonicityCertificate::Certified);
        }
        // The census agrees with what the prepared engine will see: two
        // events, both relevant.
        let worlds = report.worlds.as_ref().unwrap();
        assert_eq!(worlds.num_events, 2);
        assert!(worlds.tractable);
    }

    #[test]
    fn hints_flow_from_the_analyzer_into_the_engine() {
        let analyzer = StaticAnalyzer::new().with_dtd(pxml_workloads::warehouse::warehouse_dtd());
        // A service below a service is impossible under the DTD.
        let mut query = PatternQuery::new(Some("service"));
        query.add_child(query.root(), "service");
        let analysis = analyzer.analyze_pattern(&query);
        assert!(analysis.hints().statically_empty);
        let tree = pxml_workloads::warehouse::skeleton(3);
        let prepared = QueryEngine::new().prepare_with_hints(&tree, &query, &analysis.hints());
        assert!(prepared.is_empty());
    }
}
