//! Static semiring support facts: what the generic provenance path
//! (`PreparedQuery::answers_in::<S>`, `simplify_with_in::<S>`) can
//! promise for a workload *before* it runs.
//!
//! The query engine interns each answer's condition as one conjunction
//! of literals, so every semiring in `pxml_events::semiring` is
//! evaluated **exactly** on pattern-query answers — there is no
//! approximation to certify. What remains static and useful:
//!
//! - a **lineage width bound**: an answer's [`Lineage`] set only ever
//!   mentions events some condition mentions, so the census'
//!   `num_relevant` bounds it (and a statically-empty query's answers
//!   have width 0);
//! - a **top-k exactness** fact: a single-conjunction condition carries
//!   exactly one proof, so [`TopKProofs`] is exact for any `k ≥ 1`
//!   (and needs zero proofs when the query is statically empty);
//! - which semirings make the update simplifier's certainty pruning a
//!   non-identity: only semirings with certain literals (probability,
//!   possibility) prune, and only when the tree actually carries
//!   π = 1 events.
//!
//! [`Lineage`]: pxml_events::Lineage
//! [`TopKProofs`]: pxml_events::TopKProofs

use crate::census::{WorldsAnalysis, WorldsLint};
use crate::query::QueryAnalysis;

/// The semiring instances the generic query/update paths accept, in the
/// order the machine lines list them.
pub const SUPPORTED_SEMIRINGS: &[&str] = &[
    "probability",
    "possibility",
    "counting",
    "lineage",
    "top_k_proofs",
];

/// Per-query semiring facts, derived from the query analysis and (when
/// a tree was supplied) the world census.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuerySemiringSupport {
    /// Upper bound on any answer's lineage set size. `None` means no
    /// tree was supplied, so no bound is known.
    pub lineage_width_bound: Option<usize>,
    /// Maximum number of proofs any answer needs: `0` for a statically
    /// empty query, `1` otherwise (answer conditions are single
    /// conjunctions).
    pub topk_proofs_needed: usize,
}

impl QuerySemiringSupport {
    /// `true` — `TopKProofs { k }` is exact whenever
    /// `k >= topk_proofs_needed.max(1)`, which every `k ≥ 1` satisfies.
    pub fn topk_exact(&self) -> bool {
        self.topk_proofs_needed <= 1
    }
}

/// Computes the per-query semiring facts.
pub fn query_semiring_support(
    query: &QueryAnalysis,
    worlds: Option<&WorldsAnalysis>,
) -> QuerySemiringSupport {
    if query.satisfiability.is_statically_empty() {
        return QuerySemiringSupport {
            lineage_width_bound: Some(0),
            topk_proofs_needed: 0,
        };
    }
    QuerySemiringSupport {
        lineage_width_bound: worlds.map(|w| w.num_relevant),
        topk_proofs_needed: 1,
    }
}

/// Script-side semiring facts: whether certainty pruning does anything.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScriptSemiringSupport {
    /// Number of π = 1 events the census found, or `None` when no tree
    /// was supplied.
    pub certain_events: Option<usize>,
}

impl ScriptSemiringSupport {
    /// The semirings under which `simplify_with_in` prunes certain
    /// literals on this tree: `probability,possibility` when certain
    /// events exist, `none` when provably none do, `unknown` without a
    /// tree. Counting and lineage never have certain literals, so
    /// pruning is always an identity for them.
    pub fn prune_semirings(&self) -> &'static str {
        match self.certain_events {
            Some(0) => "none",
            Some(_) => "probability,possibility",
            None => "unknown",
        }
    }
}

/// Computes the script-side semiring facts from the census.
pub fn script_semiring_support(worlds: Option<&WorldsAnalysis>) -> ScriptSemiringSupport {
    ScriptSemiringSupport {
        certain_events: worlds.map(|w| {
            w.lints
                .iter()
                .filter(|l| matches!(l, WorldsLint::PinnableEvent { .. }))
                .count()
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::census::analyze_worlds;
    use crate::StaticAnalyzer;
    use pxml_core::query::pattern::PatternQuery;
    use pxml_core::ProbTree;
    use pxml_events::{Condition, Literal};
    use pxml_workloads::paper::figure1;
    use pxml_workloads::warehouse::{services_with_endpoint_and_contact, warehouse_dtd};

    #[test]
    fn satisfiable_query_gets_census_lineage_bound_and_one_proof() {
        let tree = figure1();
        let query = services_with_endpoint_and_contact();
        let analyzer = StaticAnalyzer::new();
        let analysis = analyzer.analyze_pattern(&query);
        let worlds = analyzer.analyze_worlds(&tree);
        let support = query_semiring_support(&analysis, Some(&worlds));
        assert_eq!(support.lineage_width_bound, Some(worlds.num_relevant));
        assert_eq!(support.topk_proofs_needed, 1);
        assert!(support.topk_exact());
    }

    #[test]
    fn statically_empty_query_needs_no_proofs_and_no_lineage() {
        let analyzer = StaticAnalyzer::new().with_dtd(warehouse_dtd());
        let mut query = PatternQuery::new(Some("service"));
        query.add_child(query.root(), "service");
        let analysis = analyzer.analyze_pattern(&query);
        let support = query_semiring_support(&analysis, None);
        assert_eq!(support.lineage_width_bound, Some(0));
        assert_eq!(support.topk_proofs_needed, 0);
        assert!(support.topk_exact());
    }

    #[test]
    fn prune_semirings_track_certain_events() {
        let mut tree = ProbTree::new("A");
        let maybe = tree.events_mut().insert("maybe", 0.5);
        let root = tree.tree().root();
        tree.add_child(root, "B", Condition::of(Literal::pos(maybe)));
        let worlds = analyze_worlds(&tree, 16);
        assert_eq!(
            script_semiring_support(Some(&worlds)).prune_semirings(),
            "none"
        );

        tree.events_mut().insert("sure", 1.0);
        let worlds = analyze_worlds(&tree, 16);
        assert_eq!(
            script_semiring_support(Some(&worlds)).prune_semirings(),
            "probability,possibility"
        );
        assert_eq!(script_semiring_support(None).prune_semirings(), "unknown");
    }
}
