//! Static analysis of a prob-tree's event/condition structure: the
//! co-occurrence component census, the tractability verdict against an
//! event budget, and condition lints.
//!
//! The census never enumerates a single valuation — it is computed from
//! the conditions' co-occurrence graph via [`WorldEngine::shard_plan`],
//! and its [`predicted states`](WorldsAnalysis::predicted_states) equal
//! the executor's `states_enumerated` counter by construction.

use pxml_core::worlds::{ShardPlan, WorldEngine};
use pxml_core::ProbTree;
use pxml_events::{EventId, Possibility, Semiring};
use pxml_tree::NodeId;

/// A condition-level lint: something statically suspicious about how the
/// tree uses its event variables.
#[derive(Clone, Debug, PartialEq)]
pub enum WorldsLint {
    /// The event has probability 1: it is always true, so weighted
    /// enumeration pins it instead of branching on it.
    PinnableEvent {
        /// The certain event.
        event: EventId,
        /// Its name in the event table.
        name: String,
    },
    /// A node's condition is impossible — its value under the
    /// [`Possibility`] semiring is `false`, i.e. it holds in no
    /// positive-probability world. This covers the intrinsic
    /// contradiction `w ∧ ¬w` *and* a negative literal on a `π(w) = 1`
    /// event, which the old syntactic `is_consistent` check missed.
    ContradictoryCondition {
        /// The node that can never exist.
        node: NodeId,
        /// Its label.
        label: String,
    },
}

/// The static analysis of one prob-tree's world structure.
#[derive(Clone, Debug)]
pub struct WorldsAnalysis {
    /// Total number of declared events.
    pub num_events: usize,
    /// Events actually mentioned by some condition.
    pub num_relevant: usize,
    /// The shard plan when certain (π = 1) events are pinned — the plan
    /// the weighted executor follows.
    pub weighted_plan: ShardPlan,
    /// The shard plan when every relevant event branches.
    pub unweighted_plan: ShardPlan,
    /// The event budget the verdict was computed against.
    pub max_events: usize,
    /// `true` if the weighted plan fits the budget, i.e. the factorized
    /// enumeration is tractable.
    pub tractable: bool,
    /// Static lints over events and conditions.
    pub lints: Vec<WorldsLint>,
}

impl WorldsAnalysis {
    /// Predicted `Σ_c 2^{free(C_i)}` shard states of the weighted plan —
    /// exactly what `FactorizedWorlds::states_enumerated` will report.
    pub fn predicted_states(&self) -> u128 {
        self.weighted_plan.predicted_states()
    }
}

/// Computes the census of `tree` against an event budget of `max_events`.
///
/// Trees with shared (stored) children are analyzed through the expanded
/// view, so per-node lints can name every logical occurrence; the shard
/// plans are unaffected (sharing never changes the distinct condition
/// set, so the co-occurrence components agree).
pub fn analyze_worlds(tree: &ProbTree, max_events: usize) -> WorldsAnalysis {
    let tree = tree.expanded();
    let tree = tree.as_ref();
    let engine = WorldEngine::new(tree);
    let weighted_plan = engine.shard_plan(true);
    let unweighted_plan = engine.shard_plan(false);
    let tractable = weighted_plan.check_budget(max_events).is_ok();
    let mut lints = Vec::new();
    for event in tree.events().iter() {
        if tree.events().prob(event) >= 1.0 {
            lints.push(WorldsLint::PinnableEvent {
                event,
                name: tree.events().name(event).to_owned(),
            });
        }
    }
    // Impossibility is a semiring-zero test, not an ad-hoc syntactic
    // check: a condition is dead iff its Possibility value is `false`
    // (inconsistent, or negating a certain event).
    let possibility = Possibility;
    for node in tree.tree().iter() {
        if let Some(condition) = tree.condition_ref(node) {
            if possibility.is_zero(&condition.eval_in(&possibility, tree.events())) {
                lints.push(WorldsLint::ContradictoryCondition {
                    node,
                    label: tree.tree().label(node).to_owned(),
                });
            }
        }
    }
    WorldsAnalysis {
        num_events: tree.events().len(),
        num_relevant: engine.num_relevant(),
        weighted_plan,
        unweighted_plan,
        max_events,
        tractable,
        lints,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxml_core::worlds::{ShardExecutor, WorldEngineConfig};
    use pxml_events::{Condition, Literal};
    use pxml_workloads::random::many_components_probtree;

    #[test]
    fn census_predicts_the_executor_counter() {
        let tree = many_components_probtree(4, 3);
        let analysis = analyze_worlds(&tree, 16);
        assert!(analysis.tractable);
        assert_eq!(analysis.weighted_plan.num_components(), 4);
        let engine = WorldEngine::new(&tree);
        let executor = ShardExecutor::new(WorldEngineConfig::sequential());
        let worlds = executor.run(&engine, true, 16).unwrap();
        assert_eq!(
            analysis.predicted_states(),
            u128::from(worlds.states_enumerated())
        );
    }

    #[test]
    fn census_flags_intractable_trees_without_enumerating() {
        let tree = many_components_probtree(1, 10);
        let analysis = analyze_worlds(&tree, 6);
        assert!(!analysis.tractable);
        assert_eq!(analysis.weighted_plan.largest_free_component(), 10);
    }

    #[test]
    fn lints_catch_certain_events_and_contradictions() {
        let mut tree = ProbTree::new("A");
        let sure = tree.events_mut().insert("sure", 1.0);
        let maybe = tree.events_mut().insert("maybe", 0.5);
        let root = tree.tree().root();
        tree.add_child(root, "B", Condition::of(Literal::pos(sure)));
        tree.add_child(
            root,
            "C",
            Condition::from_literals([Literal::pos(maybe), Literal::neg(maybe)]),
        );
        let analysis = analyze_worlds(&tree, 16);
        assert!(analysis
            .lints
            .iter()
            .any(|l| matches!(l, WorldsLint::PinnableEvent { name, .. } if name == "sure")));
        assert!(analysis.lints.iter().any(
            |l| matches!(l, WorldsLint::ContradictoryCondition { label, .. } if label == "C")
        ));
        // Pinning shrinks the weighted plan relative to the unweighted one.
        assert!(
            analysis.weighted_plan.num_free_events() < analysis.unweighted_plan.num_free_events()
        );
    }

    #[test]
    fn possibility_lint_catches_negated_certain_events() {
        // `¬sure` with π(sure) = 1 is syntactically consistent but holds in
        // no world — the Possibility semiring sees through it.
        let mut tree = ProbTree::new("A");
        let sure = tree.events_mut().insert("sure", 1.0);
        let maybe = tree.events_mut().insert("maybe", 0.5);
        let root = tree.tree().root();
        tree.add_child(root, "B", Condition::of(Literal::neg(sure)));
        tree.add_child(root, "C", Condition::of(Literal::pos(maybe)));
        let analysis = analyze_worlds(&tree, 16);
        assert!(analysis.lints.iter().any(
            |l| matches!(l, WorldsLint::ContradictoryCondition { label, .. } if label == "B")
        ));
        assert!(!analysis.lints.iter().any(
            |l| matches!(l, WorldsLint::ContradictoryCondition { label, .. } if label == "C")
        ));
    }
}
