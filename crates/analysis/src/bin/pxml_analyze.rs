//! `pxml-analyze` — lints the paper/warehouse workload corpus with the
//! static analyzer and, unless `--quick` is given, cross-checks every
//! prediction against the engine counters it claims to predict.
//!
//! Exit status 0 means the corpus is clean *and* every checked
//! prediction matched; any mismatch or unexpected verdict is reported
//! and exits 1. `--machine` prints the stable `key=value` format instead
//! of the human-readable report.

use std::process::ExitCode;

use rand::rngs::StdRng;
use rand::SeedableRng;

use pxml_analysis::StaticAnalyzer;
use pxml_core::update::{UpdateEngine, UpdateEngineConfig, UpdateScript};
use pxml_core::worlds::{ShardExecutor, WorldEngine, WorldEngineConfig};
use pxml_core::{MonotonicityCertificate, PatternQuery, QueryEngine};
use pxml_workloads::paper::{d0_deletion, figure1, theorem1_query_battery, theorem3_tree};
use pxml_workloads::warehouse::{
    scenario_script, services_with_endpoint_and_contact, skeleton, warehouse_dtd, WarehouseConfig,
};

struct Lint {
    quick: bool,
    machine: bool,
    failures: Vec<String>,
}

impl Lint {
    fn check(&mut self, what: &str, ok: bool) {
        if !ok {
            self.failures.push(what.to_owned());
        }
    }

    fn emit(&self, report: &pxml_analysis::AnalysisReport, heading: &str) {
        if self.machine {
            for line in report.machine_lines() {
                println!("{heading}.{line}");
            }
        } else {
            println!("== {heading} ==");
            print!("{report}");
            println!();
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut lint = Lint {
        quick: args.iter().any(|a| a == "--quick"),
        machine: args.iter().any(|a| a == "--machine"),
        failures: Vec::new(),
    };
    if let Some(unknown) = args.iter().find(|a| *a != "--quick" && *a != "--machine") {
        eprintln!("unknown flag {unknown:?} (expected --quick and/or --machine)");
        return ExitCode::FAILURE;
    }

    figure1_battery(&mut lint);
    theorem3_family(&mut lint);
    warehouse_scenario(&mut lint);

    if lint.failures.is_empty() {
        if !lint.machine {
            println!("pxml-analyze: corpus is clean");
        }
        ExitCode::SUCCESS
    } else {
        for failure in &lint.failures {
            eprintln!("pxml-analyze: FAILED: {failure}");
        }
        ExitCode::FAILURE
    }
}

/// Figure 1 + the Theorem 1 query battery: every query must be certified
/// locally monotone and the census must be tractable.
fn figure1_battery(lint: &mut Lint) {
    let analyzer = StaticAnalyzer::new();
    let tree = figure1();
    let battery = theorem1_query_battery();
    let refs: Vec<&PatternQuery> = battery.iter().collect();
    let report = analyzer.report(Some(&tree), &refs, None);
    lint.emit(&report, "figure1");
    lint.check("figure1 battery is clean", report.is_clean());
    for analysis in &report.queries {
        lint.check(
            "battery query certified",
            analysis.certificate == MonotonicityCertificate::Certified,
        );
    }
    if !lint.quick {
        // Cross-check: the census predicts the executor counter exactly.
        let worlds = report.worlds.as_ref().expect("tree was given");
        let engine = WorldEngine::new(&tree);
        let executor = ShardExecutor::new(WorldEngineConfig::sequential());
        match executor.run(&engine, true, 16) {
            Ok(factorized) => lint.check(
                "figure1 census == states_enumerated",
                worlds.predicted_states() == u128::from(factorized.states_enumerated()),
            ),
            Err(_) => lint.check("figure1 enumeration fits the budget", false),
        }
        // And Theorem 1 holds for every certified query.
        for query in &battery {
            let prepared = QueryEngine::new().prepare(&tree, query);
            lint.check(
                "theorem 1 holds on figure1",
                prepared.theorem1_check() == Ok(true),
            );
        }
    }
}

/// The Theorem 3 deletion family: the forecast must certify the
/// `1 + 2^n` shared-first vs `3^n` naive survivor-copy counts.
fn theorem3_family(lint: &mut Lint) {
    let analyzer = StaticAnalyzer::new();
    let max_n = if lint.quick { 3 } else { 6 };
    for n in 1..=max_n {
        let tree = theorem3_tree(n);
        let script = UpdateScript::from_steps([d0_deletion(0.8)]);
        let shared = analyzer.analyze_script(&tree, &script);
        lint.check(
            "theorem3 shared-first forecast is 1 + 2^n",
            shared.predicted_survivor_copies() == 1 + (1usize << n),
        );
        let raw = analyzer
            .clone()
            .with_update_config(UpdateEngineConfig::raw())
            .analyze_script(&tree, &script);
        lint.check(
            "theorem3 naive forecast is 3^n",
            raw.predicted_survivor_copies() == 3usize.pow(n as u32),
        );
        if n == max_n {
            lint.emit(
                &pxml_analysis::AnalysisReport {
                    script: Some(shared.clone()),
                    ..Default::default()
                },
                &format!("theorem3 n={n}"),
            );
        }
        if !lint.quick {
            // Cross-check both forecasts against the measured counters.
            let (_, report) = UpdateEngine::new().apply_script(&tree, &script);
            lint.check(
                "theorem3 shared-first forecast == measured",
                shared.predicted_survivor_copies()
                    == report
                        .steps
                        .iter()
                        .map(|s| s.survivor_copies)
                        .sum::<usize>(),
            );
            let (_, raw_report) =
                UpdateEngine::with_config(UpdateEngineConfig::raw()).apply_script(&tree, &script);
            lint.check(
                "theorem3 naive forecast == measured",
                raw.predicted_survivor_copies()
                    == raw_report
                        .steps
                        .iter()
                        .map(|s| s.survivor_copies)
                        .sum::<usize>(),
            );
        }
    }
}

/// The hidden-web warehouse: the full pipeline report under its DTD,
/// with the canonical query certified satisfiable and every script
/// forecast matching the engine when measured.
fn warehouse_scenario(lint: &mut Lint) {
    let analyzer = StaticAnalyzer::new().with_dtd(warehouse_dtd());
    let config = if lint.quick {
        WarehouseConfig {
            services: 2,
            extraction_rounds: 6,
            deletion_ratio: 0.25,
        }
    } else {
        WarehouseConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(0xA11A);
    let (script, _) = scenario_script(&config, &mut rng);
    let tree = skeleton(config.services);
    let query = services_with_endpoint_and_contact();
    let report = analyzer.report(Some(&tree), &[&query], Some(&script));
    lint.emit(&report, "warehouse");
    let analysis = &report.queries[0];
    lint.check(
        "warehouse query certified",
        analysis.certificate == MonotonicityCertificate::Certified,
    );
    lint.check(
        "warehouse query satisfiable under the DTD",
        !analysis.satisfiability.is_statically_empty(),
    );
    if !lint.quick {
        let script_analysis = report.script.as_ref().expect("script was given");
        let (final_tree, measured) = UpdateEngine::new().apply_script(&tree, &script);
        let matched = script_analysis
            .steps
            .iter()
            .zip(&measured.steps)
            .all(|(predicted, step)| {
                predicted.forecast.matches == step.matches
                    && predicted.forecast.total_survivor_copies() == step.survivor_copies
            });
        lint.check("warehouse forecasts == measured per step", matched);
        let census = analyzer.analyze_worlds(&final_tree);
        let engine = WorldEngine::new(&final_tree);
        let executor = ShardExecutor::new(WorldEngineConfig::sequential());
        if census.tractable {
            match executor.run(&engine, true, census.max_events) {
                Ok(factorized) => lint.check(
                    "warehouse census == states_enumerated",
                    census.predicted_states() == u128::from(factorized.states_enumerated()),
                ),
                Err(_) => lint.check("warehouse enumeration fits the budget", false),
            }
        }
    }
}
