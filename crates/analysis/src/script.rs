//! Static analysis of update scripts: dead steps, predicted
//! survivor-copy counts (Theorem 3's `1 + 2^n` vs `3^n`), and
//! step-independence certificates.
//!
//! The analyzer never enumerates possible worlds. It *does* replay the
//! polynomial per-step tree rewriting to obtain each step's pre-state, so
//! the per-step forecasts are exactly the counters a later
//! [`UpdateEngine::apply_script`] run will report.

use std::collections::BTreeSet;

use pxml_core::probtree::ProbTree;
use pxml_core::query::pattern::PatternNodeId;
use pxml_core::update::{
    DeletionForecast, ProbabilisticUpdate, UpdateAction, UpdateEngine, UpdateScript,
};
use pxml_dtd::Dtd;

use crate::query::descendant_labels;

/// The static analysis of one script step.
#[derive(Clone, Debug)]
pub struct StepAnalysis {
    /// Position of the step in the script.
    pub index: usize,
    /// The engine's forecast against the step's pre-state: match count,
    /// distinct targets, and per-target survivor-copy counts.
    pub forecast: DeletionForecast,
    /// `true` if the step selects nothing and is a no-op.
    pub dead: bool,
}

/// The label footprint of one step: which labels its query reads and
/// which labels its action can add or remove. `None` components mean the
/// footprint is not statically bounded (wildcards, or deletions whose
/// reach the DTD cannot bound).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StepFootprint {
    /// Concrete labels the defining query matches on.
    pub reads: Option<BTreeSet<String>>,
    /// Labels the action may add to or remove from the document.
    pub writes: Option<BTreeSet<String>>,
}

impl StepFootprint {
    fn is_bounded(&self) -> bool {
        self.reads.is_some() && self.writes.is_some()
    }
}

/// The static analysis of a whole script against one initial tree.
#[derive(Clone, Debug)]
pub struct ScriptAnalysis {
    /// Per-step forecasts, in script order.
    pub steps: Vec<StepAnalysis>,
    /// Per-step label footprints, in script order.
    pub footprints: Vec<StepFootprint>,
    /// Pairs `(i, j)` with `i < j` whose footprints are bounded and
    /// disjoint: adjacent such pairs may be reordered without changing
    /// the possible-world semantics (modulo event renaming).
    pub independent_pairs: Vec<(usize, usize)>,
}

impl ScriptAnalysis {
    /// Indices of the dead (no-op) steps.
    pub fn dead_steps(&self) -> Vec<usize> {
        self.steps
            .iter()
            .filter(|s| s.dead)
            .map(|s| s.index)
            .collect()
    }

    /// Total predicted survivor copies over all steps — the script-level
    /// cost the engine will pay for deletion rewriting.
    pub fn predicted_survivor_copies(&self) -> usize {
        self.steps
            .iter()
            .map(|s| s.forecast.total_survivor_copies())
            .sum()
    }

    /// Total predicted **logical** survivor nodes over all steps — what a
    /// deep-copy representation would have to materialize (Theorem 3's
    /// exponential blow-up lives here).
    pub fn predicted_logical_survivor_nodes(&self) -> usize {
        self.steps
            .iter()
            .map(|s| s.forecast.logical_survivor_nodes())
            .sum()
    }

    /// Total predicted **distinct stored** survivor nodes over all steps —
    /// what the hash-consed representation actually allocates. Under
    /// survivor sharing this stays linear on the Theorem 3 family while
    /// [`ScriptAnalysis::predicted_logical_survivor_nodes`] grows as
    /// `1 + 2^n`.
    pub fn predicted_distinct_survivor_nodes(&self) -> usize {
        self.steps
            .iter()
            .map(|s| s.forecast.distinct_survivor_nodes())
            .sum()
    }
}

/// Analyzes `script` as it would run against `tree` under `engine`'s
/// configuration (shared-first chains change the predicted counts).
pub fn analyze_script(
    engine: &UpdateEngine,
    tree: &ProbTree,
    script: &UpdateScript,
    dtd: Option<&Dtd>,
) -> ScriptAnalysis {
    let mut steps = Vec::with_capacity(script.len());
    let mut current = tree.clone();
    for (index, update) in script.steps().iter().enumerate() {
        let forecast = engine.forecast(&current, update);
        let dead = forecast.is_dead();
        steps.push(StepAnalysis {
            index,
            forecast,
            dead,
        });
        let (next, _) = engine.apply(&current, update);
        current = next;
    }
    let footprints: Vec<StepFootprint> = script
        .steps()
        .iter()
        .map(|update| step_footprint(update, dtd))
        .collect();
    let mut independent_pairs = Vec::new();
    for i in 0..footprints.len() {
        for j in (i + 1)..footprints.len() {
            if footprints_independent(&footprints[i], &footprints[j]) {
                independent_pairs.push((i, j));
            }
        }
    }
    ScriptAnalysis {
        steps,
        footprints,
        independent_pairs,
    }
}

/// Computes the label footprint of one update from its syntax (and the
/// DTD, for bounding what a deletion can take down with it).
pub fn step_footprint(update: &ProbabilisticUpdate, dtd: Option<&Dtd>) -> StepFootprint {
    let query = &update.operation.query;
    let mut reads = BTreeSet::new();
    let mut wildcard = false;
    for i in 0..query.len() {
        match query.label(PatternNodeId(i)) {
            Some(label) => {
                reads.insert(label.to_owned());
            }
            None => wildcard = true,
        }
    }
    let writes = match &update.operation.action {
        UpdateAction::Insert { subtree, .. } => Some(
            subtree
                .iter()
                .map(|n| subtree.label(n).to_owned())
                .collect::<BTreeSet<String>>(),
        ),
        UpdateAction::Delete { at } => match (query.label(*at), dtd) {
            // A deletion removes the matched node and everything below
            // it; the DTD bounds what can be below a known label.
            (Some(label), Some(dtd)) => descendant_labels(dtd, label).map(|mut closure| {
                closure.insert(label.to_owned());
                closure
            }),
            _ => None,
        },
    };
    StepFootprint {
        reads: (!wildcard).then_some(reads),
        writes,
    }
}

/// The predicted interaction of one script step with a prepared query
/// kept live by [`pxml_core::PreparedQuery::maintain`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MaintenancePrediction {
    /// The step's write footprint is bounded and disjoint from the
    /// query's maintenance footprint: maintenance is expected to patch
    /// the prepared state in place.
    Patchable,
    /// The step writes a label on the query's spine: maintenance is
    /// expected to fall back to a full re-prepare.
    SpineTouching {
        /// A label witnessing the intersection.
        witness: String,
    },
    /// No bounded verdict: the step's writes or the query's footprint
    /// are not statically bounded.
    Unbounded,
}

/// Predicts, step by step, whether a prepared query with the given
/// analysis can be maintained in place across the script.
///
/// This is a **lint, not a guarantee**: the engine decides from the
/// *runtime* [`pxml_core::UpdateDelta`], which is diffed from the actual
/// result. A step predicted [`Patchable`](MaintenancePrediction::Patchable)
/// can still force a fallback at run time — e.g. when the simplification
/// pass merges pre-existing siblings whose labels lie inside the
/// footprint, the delta reports those labels as removed/inserted even
/// though the step's own syntax never mentions them. The prediction
/// errs only in that direction; maintenance itself stays sound either
/// way.
pub fn predict_maintenance(
    query: &crate::query::QueryAnalysis,
    footprints: &[StepFootprint],
) -> Vec<MaintenancePrediction> {
    let Some(query_footprint) = query.maintenance_footprint() else {
        return vec![MaintenancePrediction::Unbounded; footprints.len()];
    };
    footprints
        .iter()
        .map(|step| match &step.writes {
            None => MaintenancePrediction::Unbounded,
            Some(writes) => match writes.intersection(&query_footprint).next() {
                Some(witness) => MaintenancePrediction::SpineTouching {
                    witness: witness.clone(),
                },
                None => MaintenancePrediction::Patchable,
            },
        })
        .collect()
}

fn footprints_independent(a: &StepFootprint, b: &StepFootprint) -> bool {
    if !a.is_bounded() || !b.is_bounded() {
        return false;
    }
    let disjoint = |x: &Option<BTreeSet<String>>, y: &Option<BTreeSet<String>>| {
        x.as_ref()
            .is_none_or(|x| y.as_ref().is_none_or(|y| x.is_disjoint(y)))
    };
    disjoint(&a.writes, &b.reads) && disjoint(&b.writes, &a.reads) && disjoint(&a.writes, &b.writes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxml_core::semantics::possible_worlds;
    use pxml_core::update::UpdateOperation;
    use pxml_core::PatternQuery;
    use pxml_tree::DataTree;
    use pxml_workloads::paper::{d0_deletion, theorem3_tree};
    use pxml_workloads::warehouse::{skeleton, warehouse_dtd};

    fn insert_fact(label: &str, confidence: f64) -> ProbabilisticUpdate {
        let mut fact = DataTree::new(label);
        let root = fact.root();
        fact.add_child(root, "value");
        let query = PatternQuery::new(Some("service"));
        let at = query.root();
        ProbabilisticUpdate::new(UpdateOperation::insert(query, at, fact), confidence)
    }

    fn delete_fact(label: &str, confidence: f64) -> ProbabilisticUpdate {
        let mut query = PatternQuery::new(Some("service"));
        let at = query.add_child(query.root(), label);
        ProbabilisticUpdate::new(UpdateOperation::delete(query, at), confidence)
    }

    #[test]
    fn forecasts_chain_and_match_the_script_report() {
        let tree = skeleton(3);
        let script = UpdateScript::from_steps([
            insert_fact("keyword", 0.9),
            insert_fact("endpoint", 0.8),
            delete_fact("keyword", 0.7),
            delete_fact("contact", 0.6), // dead: nothing to retract
        ]);
        let engine = UpdateEngine::new();
        let analysis = analyze_script(&engine, &tree, &script, Some(&warehouse_dtd()));
        let (_, report) = engine.apply_script(&tree, &script);
        assert_eq!(analysis.steps.len(), report.steps.len());
        for (predicted, measured) in analysis.steps.iter().zip(&report.steps) {
            assert_eq!(predicted.forecast.matches, measured.matches);
            assert_eq!(predicted.forecast.targets, measured.targets);
            assert_eq!(
                predicted.forecast.total_survivor_copies(),
                measured.survivor_copies
            );
        }
        assert_eq!(analysis.dead_steps(), vec![3]);
    }

    #[test]
    fn theorem3_blowup_is_predicted_without_running_the_deletion() {
        for n in 1..=4 {
            let tree = theorem3_tree(n);
            let script = UpdateScript::from_steps([d0_deletion(0.8)]);
            let shared = analyze_script(&UpdateEngine::new(), &tree, &script, None);
            assert_eq!(shared.predicted_survivor_copies(), 1 + (1 << n));
            let raw_engine =
                UpdateEngine::with_config(pxml_core::update::UpdateEngineConfig::raw());
            let raw = analyze_script(&raw_engine, &tree, &script, None);
            assert_eq!(raw.predicted_survivor_copies(), 3usize.pow(n as u32));
        }
    }

    #[test]
    fn distinct_vs_logical_node_forecasts_match_the_stored_representation() {
        use pxml_core::update::UpdateEngineConfig;
        for n in 1..=4usize {
            let tree = theorem3_tree(n);
            let script = UpdateScript::from_steps([d0_deletion(0.8)]);
            // Sharing on: the engine grafts 1 + 2^n *logical* copies of the
            // deleted B leaf but stores its shape exactly once.
            let engine = UpdateEngine::with_config(UpdateEngineConfig {
                simplify: false,
                ..UpdateEngineConfig::default()
            });
            let analysis = analyze_script(&engine, &tree, &script, None);
            assert_eq!(analysis.predicted_logical_survivor_nodes(), 1 + (1 << n));
            assert_eq!(analysis.predicted_distinct_survivor_nodes(), 1);
            // The forecast agrees with what the applied tree actually
            // stores: logical-minus-distinct is exactly the node count the
            // hash-consed representation avoided materializing.
            let (updated, report) = engine.apply_script(&tree, &script);
            let stats = updated.memory_stats();
            assert_eq!(
                stats.logical_nodes - stats.distinct_nodes,
                analysis.predicted_logical_survivor_nodes()
                    - analysis.predicted_distinct_survivor_nodes()
            );
            assert_eq!(
                report.steps[0].distinct_nodes_after, stats.distinct_nodes,
                "the step report's distinct counter is the memory-stats one"
            );
            // The deep oracle materializes every logical copy.
            let deep = UpdateEngine::with_config(
                UpdateEngineConfig {
                    simplify: false,
                    ..UpdateEngineConfig::default()
                }
                .deep_oracle(),
            );
            let deep_analysis = analyze_script(&deep, &tree, &script, None);
            assert_eq!(
                deep_analysis.predicted_distinct_survivor_nodes(),
                deep_analysis.predicted_logical_survivor_nodes()
            );
            let (deep_out, _) = deep.apply_script(&tree, &script);
            let deep_stats = deep_out.memory_stats();
            assert_eq!(deep_stats.logical_nodes, deep_stats.distinct_nodes);
            assert_eq!(deep_stats.logical_nodes, stats.logical_nodes);
        }
    }

    /// Like [`warehouse_dtd`], but with the fact labels constrained too,
    /// so deletion footprints become statically bounded.
    fn closed_dtd() -> pxml_dtd::Dtd {
        use pxml_dtd::ChildConstraint;
        let mut dtd = warehouse_dtd();
        dtd.constrain("keyword", "kwvalue", ChildConstraint::at_least(0));
        dtd.constrain("endpoint", "epvalue", ChildConstraint::at_least(0));
        dtd.constrain_parent("contact");
        dtd.constrain_parent("kwvalue");
        dtd.constrain_parent("epvalue");
        dtd
    }

    fn insert_valued_fact(label: &str, value: &str, confidence: f64) -> ProbabilisticUpdate {
        let mut fact = DataTree::new(label);
        let root = fact.root();
        fact.add_child(root, value);
        let query = PatternQuery::new(Some("service"));
        let at = query.root();
        ProbabilisticUpdate::new(UpdateOperation::insert(query, at, fact), confidence)
    }

    #[test]
    fn disjoint_footprints_certify_reorderable_steps() {
        let script = UpdateScript::from_steps([
            insert_valued_fact("keyword", "kwvalue", 0.9),
            insert_valued_fact("endpoint", "epvalue", 0.8),
            delete_fact("keyword", 0.7),
        ]);
        let dtd = closed_dtd();
        let tree = skeleton(2);
        let analysis = analyze_script(&UpdateEngine::new(), &tree, &script, Some(&dtd));
        // keyword-insert vs endpoint-insert commute; endpoint-insert vs
        // keyword-delete commute; keyword-insert vs keyword-delete do NOT.
        assert_eq!(analysis.independent_pairs, vec![(0, 1), (1, 2)]);
        // Certified pairs really commute: swapping adjacent independent
        // steps yields the same normalized possible-world set.
        let swapped = UpdateScript::from_steps([
            insert_valued_fact("endpoint", "epvalue", 0.8),
            insert_valued_fact("keyword", "kwvalue", 0.9),
            delete_fact("keyword", 0.7),
        ]);
        let engine = UpdateEngine::new();
        let (a, _) = engine.apply_script(&tree, &script);
        let (b, _) = engine.apply_script(&tree, &swapped);
        let pw_a = possible_worlds(&a, 16).unwrap().normalized();
        let pw_b = possible_worlds(&b, 16).unwrap().normalized();
        assert!(pw_a.isomorphic(&pw_b));
    }

    #[test]
    fn maintenance_predictions_match_the_engine_on_the_warehouse() {
        use pxml_core::{Document, MaintainOutcome, QueryEngine};
        use pxml_workloads::warehouse::services_with_endpoint_and_contact;

        let query = services_with_endpoint_and_contact();
        let query_analysis = crate::query::analyze_pattern(&query, None);
        let script = UpdateScript::from_steps([
            insert_fact("keyword", 0.9),  // off-footprint → patchable
            insert_fact("endpoint", 0.8), // on the spine → fallback
            delete_fact("keyword", 0.7),  // unbounded writes without a DTD
        ]);
        let footprints: Vec<StepFootprint> = script
            .steps()
            .iter()
            .map(|update| step_footprint(update, None))
            .collect();
        let predictions = predict_maintenance(&query_analysis, &footprints);
        assert_eq!(
            predictions,
            vec![
                MaintenancePrediction::Patchable,
                MaintenancePrediction::SpineTouching {
                    witness: "endpoint".into(),
                },
                MaintenancePrediction::Unbounded,
            ]
        );

        // A wildcarded query is never predicted patchable.
        let mut wild = PatternQuery::new(Some("service"));
        wild.add_node(wild.root(), pxml_core::query::pattern::Axis::Child, None);
        let wild_predictions =
            predict_maintenance(&crate::query::analyze_pattern(&wild, None), &footprints);
        assert!(wild_predictions
            .iter()
            .all(|p| *p == MaintenancePrediction::Unbounded));

        // Ground truth: run the script through a Document and maintain a
        // prepared query across it. Bounded predictions agree with the
        // engine; the Unbounded delete is where the lint is conservative —
        // the runtime delta (keyword/value removals, off-footprint) may
        // still patch.
        let mut doc = Document::new(skeleton(2));
        let engine = UpdateEngine::new();
        let query_engine = QueryEngine::new();
        let mut prepared = query_engine.prepare_doc(&doc, &query);
        let mut outcomes = Vec::new();
        for update in script.steps() {
            engine.apply_doc(&mut doc, update);
            outcomes.push(prepared.maintain(&doc).unwrap());
        }
        assert!(matches!(outcomes[0], MaintainOutcome::Patched { .. }));
        assert!(matches!(outcomes[1], MaintainOutcome::Fallback { .. }));
        // Whatever path step 3 took, the maintained state serves exactly
        // what a fresh prepare serves.
        let fresh = query_engine.prepare_doc(&doc, &query);
        assert_eq!(prepared.len(), fresh.len());
        for index in 0..prepared.len() {
            assert_eq!(prepared.probability(index), fresh.probability(index));
        }
    }

    #[test]
    fn unbounded_footprints_are_never_certified() {
        // Deleting below an unconstrained label: the DTD cannot bound the
        // removed labels, so nothing involving it is certified.
        let script =
            UpdateScript::from_steps([delete_fact("keyword", 0.9), insert_fact("contact", 0.8)]);
        let no_dtd = analyze_script(&UpdateEngine::new(), &skeleton(1), &script, None);
        assert!(no_dtd.independent_pairs.is_empty());
        assert_eq!(no_dtd.footprints[0].writes, None);
    }
}
