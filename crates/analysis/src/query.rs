//! Static analysis of queries: local-monotonicity certificates, pattern
//! spines, and DTD-based satisfiability.
//!
//! Everything here is computed from the *syntax* of the query (and, when
//! available, the warehouse DTD) — no data tree is inspected and no
//! possible world is enumerated.

use std::collections::BTreeSet;

use pxml_core::query::pattern::{Axis, PatternNodeId, PatternQuery};
use pxml_core::query::{MonotonicityCertificate, Query, QueryHints};
use pxml_dtd::Dtd;

/// Whether a pattern query can have answers at all under the DTD.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Satisfiability {
    /// No static obstruction was found (the answer set may still be empty
    /// on a particular document).
    Satisfiable,
    /// Every DTD-valid document has an empty answer set; the engines can
    /// skip matching entirely.
    StaticallyEmpty {
        /// The pattern edge that can never match.
        reason: String,
    },
}

impl Satisfiability {
    /// `true` for the statically-empty verdict.
    pub fn is_statically_empty(&self) -> bool {
        matches!(self, Satisfiability::StaticallyEmpty { .. })
    }
}

/// One root-to-leaf chain of a pattern query: the root label followed by
/// `(axis, label)` steps. `None` labels are wildcards.
///
/// The union of labels over all spines is the pattern's *footprint*: an
/// update whose touched labels avoid the footprint cannot change the
/// answer set, which is what incremental view maintenance keys on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PatternSpine {
    /// Label required of the pattern root (`None` = wildcard).
    pub root_label: Option<String>,
    /// The steps from the root down to one leaf, outermost first.
    pub steps: Vec<(Axis, Option<String>)>,
}

/// The static analysis of one query.
#[derive(Clone, Debug)]
pub struct QueryAnalysis {
    /// How the engine describes the query.
    pub description: String,
    /// The O(|query|) syntactic local-monotonicity certificate.
    pub certificate: MonotonicityCertificate,
    /// DTD-based satisfiability (always `Satisfiable` when no DTD is
    /// known or the query is not a pattern).
    pub satisfiability: Satisfiability,
    /// Root-to-leaf spines (empty for non-pattern queries).
    pub spines: Vec<PatternSpine>,
}

impl QueryAnalysis {
    /// The hints this analysis justifies passing to
    /// [`pxml_core::QueryEngine::prepare_with_hints`].
    pub fn hints(&self) -> QueryHints {
        QueryHints {
            statically_empty: self.satisfiability.is_statically_empty(),
        }
    }

    /// The set of concrete labels mentioned anywhere on a spine.
    ///
    /// Wildcards are silently skipped, so this set is useful for
    /// diagnostics but **not** sound as a maintenance footprint — use
    /// [`QueryAnalysis::maintenance_footprint`] for that.
    pub fn footprint(&self) -> BTreeSet<String> {
        let mut labels = BTreeSet::new();
        for spine in &self.spines {
            labels.extend(spine.root_label.clone());
            for (_, label) in &spine.steps {
                labels.extend(label.clone());
            }
        }
        labels
    }

    /// The query's *maintenance footprint*: the finite label set
    /// incremental view maintenance
    /// ([`pxml_core::PreparedQuery::maintain`]) keys on. `None` when no
    /// bounded set exists — the query has no spines (it is not a pattern)
    /// or some spine node is a label wildcard, in which case an update to
    /// *any* label could create or destroy answers and maintenance must
    /// re-prepare.
    ///
    /// Agrees with the engine-side
    /// [`Query::label_footprint`] on every pattern query (every pattern
    /// node lies on some root-to-leaf spine).
    pub fn maintenance_footprint(&self) -> Option<BTreeSet<String>> {
        if self.spines.is_empty() {
            return None;
        }
        let mut labels = BTreeSet::new();
        for spine in &self.spines {
            labels.insert(spine.root_label.clone()?);
            for (_, label) in &spine.steps {
                labels.insert(label.clone()?);
            }
        }
        Some(labels)
    }
}

/// Analyzes an arbitrary query: only the certificate is available.
pub fn analyze_query(query: &dyn Query) -> QueryAnalysis {
    QueryAnalysis {
        description: query.describe(),
        certificate: query.monotonicity(),
        satisfiability: Satisfiability::Satisfiable,
        spines: Vec::new(),
    }
}

/// Analyzes a pattern query against an optional DTD.
pub fn analyze_pattern(query: &PatternQuery, dtd: Option<&Dtd>) -> QueryAnalysis {
    QueryAnalysis {
        description: query.describe(),
        certificate: query.monotonicity(),
        satisfiability: dtd.map_or(Satisfiability::Satisfiable, |d| {
            pattern_satisfiable(query, d)
        }),
        spines: extract_spines(query),
    }
}

/// Extracts every root-to-leaf `(axis, label)` chain of the pattern.
pub fn extract_spines(query: &PatternQuery) -> Vec<PatternSpine> {
    let n = query.len();
    if n == 0 {
        return Vec::new();
    }
    let mut has_children = vec![false; n];
    for i in 0..n {
        if let Some((parent, _)) = query.parent_of(PatternNodeId(i)) {
            has_children[parent.0] = true;
        }
    }
    let mut spines = Vec::new();
    for (leaf, _) in has_children.iter().enumerate().filter(|(_, has)| !**has) {
        let mut steps = Vec::new();
        let mut node = PatternNodeId(leaf);
        while let Some((parent, axis)) = query.parent_of(node) {
            steps.push((axis, query.label(node).map(str::to_owned)));
            node = parent;
        }
        steps.reverse();
        spines.push(PatternSpine {
            root_label: query.label(query.root()).map(str::to_owned),
            steps,
        });
    }
    spines
}

/// Checks every parent-child pattern edge with two concrete labels
/// against the DTD. Sound on DTD-valid documents: a
/// [`Satisfiability::StaticallyEmpty`] verdict means the pattern has no
/// match in *any* document valid against the DTD. Wildcard edges and
/// unconstrained parent labels are conservatively considered satisfiable.
pub fn pattern_satisfiable(query: &PatternQuery, dtd: &Dtd) -> Satisfiability {
    for i in 0..query.len() {
        let node = PatternNodeId(i);
        let Some((parent, axis)) = query.parent_of(node) else {
            continue;
        };
        let (Some(parent_label), Some(child_label)) = (query.label(parent), query.label(node))
        else {
            continue;
        };
        let reachable = match axis {
            Axis::Child => dtd
                .constraint(parent_label, child_label)
                .is_none_or(|c| c.max != Some(0)),
            Axis::Descendant => descendant_labels(dtd, parent_label)
                .is_none_or(|closure| closure.contains(child_label)),
        };
        if !reachable {
            let axis_name = match axis {
                Axis::Child => "child",
                Axis::Descendant => "descendant",
            };
            return Satisfiability::StaticallyEmpty {
                reason: format!(
                    "the DTD never places a {child_label:?} {axis_name} below {parent_label:?}"
                ),
            };
        }
    }
    Satisfiability::Satisfiable
}

/// The labels that can appear strictly below a `label`-labeled node in a
/// DTD-valid document. Returns `None` (meaning "any label") as soon as an
/// unconstrained label is reachable, since anything may appear below it.
pub fn descendant_labels(dtd: &Dtd, label: &str) -> Option<BTreeSet<String>> {
    if !dtd.constrains(label) {
        return None;
    }
    let mut closure = BTreeSet::new();
    let mut frontier = vec![label.to_owned()];
    while let Some(current) = frontier.pop() {
        for (child, constraint) in dtd.child_rules(&current) {
            if constraint.max == Some(0) || closure.contains(child) {
                continue;
            }
            if !dtd.constrains(child) {
                return None;
            }
            closure.insert(child.to_owned());
            frontier.push(child.to_owned());
        }
    }
    Some(closure)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxml_core::query::monotone::NegationQuery;
    use pxml_dtd::ChildConstraint;
    use pxml_workloads::warehouse::warehouse_dtd;

    fn service_fact(label: &str) -> PatternQuery {
        let mut query = PatternQuery::new(Some("service"));
        query.add_child(query.root(), label);
        query
    }

    #[test]
    fn positive_patterns_are_certified_and_negation_is_rejected() {
        let analysis = analyze_pattern(&service_fact("endpoint"), None);
        assert_eq!(analysis.certificate, MonotonicityCertificate::Certified);
        let negated = analyze_query(&NegationQuery {
            forbidden: "spam".into(),
        });
        assert!(matches!(
            negated.certificate,
            MonotonicityCertificate::Rejected { .. }
        ));
    }

    #[test]
    fn spines_cover_every_leaf_and_footprint_collects_labels() {
        let mut query = PatternQuery::new(Some("service"));
        let kw = query.add_child(query.root(), "keyword");
        query.add_descendant(kw, "value");
        query.add_child(query.root(), "endpoint");
        let analysis = analyze_pattern(&query, None);
        assert_eq!(analysis.spines.len(), 2);
        assert!(analysis.spines.iter().any(|s| s.steps
            == vec![
                (Axis::Child, Some("keyword".into())),
                (Axis::Descendant, Some("value".into())),
            ]));
        let footprint = analysis.footprint();
        for label in ["service", "keyword", "value", "endpoint"] {
            assert!(footprint.contains(label));
        }
    }

    #[test]
    fn maintenance_footprint_agrees_with_the_engine_and_rejects_wildcards() {
        // Concrete-label patterns: the static footprint is exactly the
        // engine-side `Query::label_footprint` maintenance keys on.
        let mut query = PatternQuery::new(Some("service"));
        let kw = query.add_child(query.root(), "keyword");
        query.add_descendant(kw, "value");
        query.add_child(query.root(), "endpoint");
        let analysis = analyze_pattern(&query, None);
        assert_eq!(analysis.maintenance_footprint(), query.label_footprint());
        assert_eq!(
            analysis.maintenance_footprint().unwrap(),
            analysis.footprint()
        );

        // A wildcard anywhere unbounds the footprint — on both sides.
        let mut wild = PatternQuery::new(Some("service"));
        wild.add_child(wild.root(), "endpoint");
        wild.add_node(wild.root(), Axis::Child, None);
        let wild_analysis = analyze_pattern(&wild, None);
        assert_eq!(wild_analysis.maintenance_footprint(), None);
        assert_eq!(wild.label_footprint(), None);
        // …while the diagnostic footprint still lists the concrete labels.
        assert!(wild_analysis.footprint().contains("endpoint"));

        // Non-pattern queries have no spines, hence no footprint.
        let negated = analyze_query(&NegationQuery {
            forbidden: "spam".into(),
        });
        assert_eq!(negated.maintenance_footprint(), None);
    }

    #[test]
    fn dtd_refutes_impossible_edges() {
        let dtd = warehouse_dtd();
        // Facts can sit under services…
        assert_eq!(
            pattern_satisfiable(&service_fact("endpoint"), &dtd),
            Satisfiability::Satisfiable
        );
        // …but a service can never hold another service.
        let verdict = pattern_satisfiable(&service_fact("service"), &dtd);
        assert!(verdict.is_statically_empty());
        // The analysis exposes the verdict as an engine hint.
        let analysis = analyze_pattern(&service_fact("service"), Some(&dtd));
        assert!(analysis.hints().statically_empty);
    }

    #[test]
    fn descendant_closure_stops_at_unconstrained_labels() {
        let dtd = warehouse_dtd();
        // `keyword` is unconstrained, so anything may appear below it and
        // below `warehouse` transitively.
        assert_eq!(descendant_labels(&dtd, "keyword"), None);
        assert_eq!(descendant_labels(&dtd, "warehouse"), None);
        // A fully constrained chain has a finite closure.
        let mut closed = Dtd::new();
        closed.constrain("a", "b", ChildConstraint::at_least(0));
        closed.constrain("b", "c", ChildConstraint::between(0, 2));
        closed.constrain_parent("c");
        let closure = descendant_labels(&closed, "a").unwrap();
        assert_eq!(closure, BTreeSet::from(["b".to_owned(), "c".to_owned()]));
        // Descendant-axis satisfiability uses the closure.
        let mut query = PatternQuery::new(Some("a"));
        query.add_descendant(query.root(), "c");
        assert_eq!(
            pattern_satisfiable(&query, &closed),
            Satisfiability::Satisfiable
        );
        let mut bad = PatternQuery::new(Some("c"));
        bad.add_descendant(bad.root(), "a");
        assert!(pattern_satisfiable(&bad, &closed).is_statically_empty());
    }
}
