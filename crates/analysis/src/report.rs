//! The combined [`AnalysisReport`]: human-readable `Display` plus a
//! stable line-oriented machine format (`section.key=value`), with no
//! external serialization dependency.

use std::fmt;

use pxml_core::MonotonicityCertificate;

use crate::census::{WorldsAnalysis, WorldsLint};
use crate::query::{QueryAnalysis, Satisfiability};
use crate::script::{predict_maintenance, MaintenancePrediction, ScriptAnalysis};
use crate::semiring::{query_semiring_support, script_semiring_support, SUPPORTED_SEMIRINGS};

/// Everything the static analyzer can say about a workload before any
/// engine runs: the query-side certificates, the script-side forecasts
/// and the world-side census. Sections the caller did not request are
/// `None`.
#[derive(Clone, Debug, Default)]
pub struct AnalysisReport {
    /// Query analyses (certificate, satisfiability, spines).
    pub queries: Vec<QueryAnalysis>,
    /// Script analysis (forecasts, dead steps, independence).
    pub script: Option<ScriptAnalysis>,
    /// World census (components, predicted states, tractability, lints).
    pub worlds: Option<WorldsAnalysis>,
}

impl AnalysisReport {
    /// `true` when nothing in the report should stop the engines: every
    /// query certificate is decided (no `Unknown`), nothing is statically
    /// empty or dead, the census is tractable and lint-free.
    pub fn is_clean(&self) -> bool {
        self.queries.iter().all(|q| {
            q.certificate == MonotonicityCertificate::Certified
                && !q.satisfiability.is_statically_empty()
        }) && self
            .script
            .as_ref()
            .is_none_or(|s| s.dead_steps().is_empty())
            && self
                .worlds
                .as_ref()
                .is_none_or(|w| w.tractable && w.lints.is_empty())
    }

    /// The stable machine-readable rendering: one `section.key=value`
    /// line per fact, in deterministic order.
    pub fn machine_lines(&self) -> Vec<String> {
        let mut lines = Vec::new();
        for (i, q) in self.queries.iter().enumerate() {
            let cert = match &q.certificate {
                MonotonicityCertificate::Certified => "certified".to_owned(),
                MonotonicityCertificate::Rejected { reason } => format!("rejected:{reason}"),
                MonotonicityCertificate::Unknown => "unknown".to_owned(),
            };
            lines.push(format!("query[{i}].certificate={cert}"));
            let sat = match &q.satisfiability {
                Satisfiability::Satisfiable => "satisfiable".to_owned(),
                Satisfiability::StaticallyEmpty { reason } => format!("empty:{reason}"),
            };
            lines.push(format!("query[{i}].satisfiability={sat}"));
            lines.push(format!("query[{i}].spines={}", q.spines.len()));
            let footprint: Vec<String> = q.footprint().into_iter().collect();
            lines.push(format!("query[{i}].footprint={}", footprint.join(",")));
            let maintenance = match q.maintenance_footprint() {
                Some(labels) => labels.into_iter().collect::<Vec<_>>().join(","),
                None => "unbounded".to_owned(),
            };
            lines.push(format!("query[{i}].maintenance_footprint={maintenance}"));
        }
        if let Some(script) = &self.script {
            for step in &script.steps {
                lines.push(format!(
                    "script.step[{}].matches={}",
                    step.index, step.forecast.matches
                ));
                lines.push(format!(
                    "script.step[{}].survivor_copies={}",
                    step.index,
                    step.forecast.total_survivor_copies()
                ));
                lines.push(format!("script.step[{}].dead={}", step.index, step.dead));
            }
            let pairs: Vec<String> = script
                .independent_pairs
                .iter()
                .map(|(i, j)| format!("{i}-{j}"))
                .collect();
            lines.push(format!("script.independent_pairs={}", pairs.join(",")));
            lines.push(format!(
                "script.predicted_survivor_copies={}",
                script.predicted_survivor_copies()
            ));
            for (i, q) in self.queries.iter().enumerate() {
                for (j, prediction) in predict_maintenance(q, &script.footprints)
                    .iter()
                    .enumerate()
                {
                    let verdict = match prediction {
                        MaintenancePrediction::Patchable => "patchable".to_owned(),
                        MaintenancePrediction::SpineTouching { witness } => {
                            format!("touches:{witness}")
                        }
                        MaintenancePrediction::Unbounded => "unbounded".to_owned(),
                    };
                    lines.push(format!("maintenance.query[{i}].step[{j}]={verdict}"));
                }
            }
        }
        for (i, q) in self.queries.iter().enumerate() {
            let support = query_semiring_support(q, self.worlds.as_ref());
            lines.push(format!(
                "semiring.query[{i}].supported={}",
                SUPPORTED_SEMIRINGS.join(",")
            ));
            let width = match support.lineage_width_bound {
                Some(n) => n.to_string(),
                None => "unbounded".to_owned(),
            };
            lines.push(format!("semiring.query[{i}].lineage_width_bound={width}"));
            lines.push(format!(
                "semiring.query[{i}].topk_exact={}",
                support.topk_exact()
            ));
            lines.push(format!(
                "semiring.query[{i}].topk_proofs_needed={}",
                support.topk_proofs_needed
            ));
        }
        if self.script.is_some() {
            let support = script_semiring_support(self.worlds.as_ref());
            lines.push(format!(
                "semiring.script.prune_semirings={}",
                support.prune_semirings()
            ));
        }
        if let Some(worlds) = &self.worlds {
            lines.push(format!("worlds.events={}", worlds.num_events));
            lines.push(format!("worlds.relevant={}", worlds.num_relevant));
            lines.push(format!(
                "worlds.components={}",
                worlds.weighted_plan.num_components()
            ));
            lines.push(format!(
                "worlds.predicted_states={}",
                worlds.predicted_states()
            ));
            lines.push(format!("worlds.tractable={}", worlds.tractable));
            lines.push(format!("worlds.lints={}", worlds.lints.len()));
        }
        lines
    }
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, q) in self.queries.iter().enumerate() {
            writeln!(f, "query #{i}: {}", q.description)?;
            match &q.certificate {
                MonotonicityCertificate::Certified => {
                    writeln!(f, "  locally monotone: certified (Theorem 1 applies)")?;
                }
                MonotonicityCertificate::Rejected { reason } => {
                    writeln!(f, "  locally monotone: REJECTED — {reason}")?;
                }
                MonotonicityCertificate::Unknown => {
                    writeln!(f, "  locally monotone: unknown (no static claim)")?;
                }
            }
            match &q.satisfiability {
                Satisfiability::Satisfiable => {
                    writeln!(f, "  satisfiable under the DTD")?;
                }
                Satisfiability::StaticallyEmpty { reason } => {
                    writeln!(f, "  STATICALLY EMPTY — {reason}")?;
                }
            }
            for spine in &q.spines {
                let mut path = match &spine.root_label {
                    Some(label) => label.clone(),
                    None => "*".to_owned(),
                };
                for (axis, label) in &spine.steps {
                    let sep = match axis {
                        pxml_core::query::pattern::Axis::Child => "/",
                        pxml_core::query::pattern::Axis::Descendant => "//",
                    };
                    path.push_str(sep);
                    path.push_str(label.as_deref().unwrap_or("*"));
                }
                writeln!(f, "  spine: {path}")?;
            }
            match q.maintenance_footprint() {
                Some(labels) => {
                    let labels: Vec<String> = labels.into_iter().collect();
                    writeln!(f, "  maintenance footprint: {}", labels.join(", "))?;
                }
                None => writeln!(
                    f,
                    "  maintenance footprint: unbounded (every update re-prepares)"
                )?,
            }
            let support = query_semiring_support(q, self.worlds.as_ref());
            let width = match support.lineage_width_bound {
                Some(n) => format!("<= {n}"),
                None => "unbounded".to_owned(),
            };
            writeln!(
                f,
                "  semirings: all supported; lineage width {width}; top-k exact ({} proof(s) needed)",
                support.topk_proofs_needed
            )?;
        }
        if let Some(script) = &self.script {
            writeln!(f, "script: {} steps", script.steps.len())?;
            for step in &script.steps {
                write!(
                    f,
                    "  step #{}: {} matches, {} survivor copies",
                    step.index,
                    step.forecast.matches,
                    step.forecast.total_survivor_copies()
                )?;
                if step.dead {
                    write!(f, " [DEAD]")?;
                }
                writeln!(f)?;
            }
            if !script.independent_pairs.is_empty() {
                let pairs: Vec<String> = script
                    .independent_pairs
                    .iter()
                    .map(|(i, j)| format!("({i},{j})"))
                    .collect();
                writeln!(f, "  reorderable pairs: {}", pairs.join(" "))?;
            }
            for (i, q) in self.queries.iter().enumerate() {
                let verdicts: Vec<String> = predict_maintenance(q, &script.footprints)
                    .iter()
                    .map(|p| match p {
                        MaintenancePrediction::Patchable => "patchable".to_owned(),
                        MaintenancePrediction::SpineTouching { witness } => {
                            format!("touches:{witness}")
                        }
                        MaintenancePrediction::Unbounded => "unbounded".to_owned(),
                    })
                    .collect();
                writeln!(f, "  maintenance vs query #{i}: {}", verdicts.join(" "))?;
            }
        }
        if let Some(worlds) = &self.worlds {
            writeln!(
                f,
                "worlds: {} events ({} relevant), {} components, {} predicted shard states",
                worlds.num_events,
                worlds.num_relevant,
                worlds.weighted_plan.num_components(),
                worlds.predicted_states()
            )?;
            writeln!(
                f,
                "  tractability: {} (budget: {} events)",
                if worlds.tractable {
                    "TRACTABLE"
                } else {
                    "INTRACTABLE"
                },
                worlds.max_events
            )?;
            for lint in &worlds.lints {
                match lint {
                    WorldsLint::PinnableEvent { name, .. } => {
                        writeln!(f, "  lint: event {name:?} has pi=1 (pinnable)")?;
                    }
                    WorldsLint::ContradictoryCondition { label, .. } => {
                        writeln!(
                            f,
                            "  lint: node {label:?} carries a contradictory condition"
                        )?;
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::StaticAnalyzer;
    use pxml_workloads::paper::figure1;
    use pxml_workloads::warehouse::services_with_endpoint_and_contact;

    #[test]
    fn report_renders_both_formats() {
        let tree = figure1();
        let query = services_with_endpoint_and_contact();
        let analyzer = StaticAnalyzer::new();
        let report = analyzer.report(Some(&tree), &[&query], None);
        assert!(report.is_clean());
        let text = report.to_string();
        assert!(text.contains("locally monotone: certified"));
        assert!(text.contains("TRACTABLE"));
        let lines = report.machine_lines();
        assert!(lines.contains(&"query[0].certificate=certified".to_owned()));
        assert!(lines
            .iter()
            .any(|l| l.starts_with("worlds.predicted_states=")));
        assert!(lines.contains(&format!(
            "semiring.query[0].supported={}",
            crate::semiring::SUPPORTED_SEMIRINGS.join(",")
        )));
        assert!(lines.contains(&"semiring.query[0].topk_exact=true".to_owned()));
        assert!(lines
            .iter()
            .any(|l| l.starts_with("semiring.query[0].lineage_width_bound=")));
        assert!(text.contains("semirings: all supported"));
    }
}
