//! The Theorem 5 reduction from SAT to DTD satisfiability / validity.
//!
//! Given a CNF formula `θ` over variables `x_1 … x_k`, the paper builds the
//! prob-tree
//!
//! ```text
//! A ── B [ψ_1] … B [ψ_n]
//! ```
//!
//! where `ψ_1 ∨ … ∨ ψ_n` is the DNF of `¬θ` (one disjunct per clause: the
//! conjunction of the negated literals of that clause), each propositional
//! variable becoming an event variable. Then:
//!
//! * with the DTD `D(A) = {(B, 0, 0)}` ("no B children allowed"), the
//!   prob-tree has a valid world iff some valuation satisfies no `ψ_i`,
//!   i.e. iff `θ` is **satisfiable** — so DTD satisfiability is NP-hard;
//! * with the DTD `D(A) = {(B, 1, +∞)}` ("at least one B child"), every
//!   world is valid iff `ψ_1 ∨ … ∨ ψ_n` is a tautology, i.e. iff `θ` is
//!   **unsatisfiable** — so DTD validity is co-NP-hard.
//!
//! Both DTDs have constant size and the construction is linear in `|θ|`.

use pxml_core::probtree::ProbTree;
use pxml_events::{Condition, EventId, Literal, Valuation};
use pxml_sat::{Cnf, Lit};

use crate::dtd::{ChildConstraint, Dtd};

/// The output of the Theorem 5 reduction.
#[derive(Clone, Debug)]
pub struct Theorem5Instance {
    /// The prob-tree `A ── B[ψ_1] … B[ψ_n]`.
    pub tree: ProbTree,
    /// The satisfiability DTD `D(A) = {(B, 0, 0)}`.
    pub satisfiability_dtd: Dtd,
    /// The validity DTD `D(A) = {(B, 1, +∞)}`.
    pub validity_dtd: Dtd,
    /// The event variable corresponding to each SAT variable.
    pub variable_events: Vec<EventId>,
}

/// Builds the Theorem 5 instance for a CNF formula. Every SAT variable is
/// mapped to an event with probability ½ (the probabilities are irrelevant
/// to the decision problems).
pub fn reduce_sat(cnf: &Cnf) -> Theorem5Instance {
    let mut tree = ProbTree::new("A");
    let variable_events: Vec<EventId> = (0..cnf.num_vars)
        .map(|i| tree.events_mut().insert(format!("x{i}"), 0.5))
        .collect();
    let root = tree.tree().root();
    // One B child per clause, annotated with the conjunction of the negated
    // literals of the clause (a disjunct of the DNF of ¬θ).
    for clause in &cnf.clauses {
        let condition = Condition::from_literals(clause.iter().map(|lit: &Lit| Literal {
            event: variable_events[lit.var.index()],
            positive: !lit.positive,
        }));
        tree.add_child(root, "B", condition);
    }

    let mut satisfiability_dtd = Dtd::new();
    satisfiability_dtd.constrain("A", "B", ChildConstraint::forbidden());
    let mut validity_dtd = Dtd::new();
    validity_dtd.constrain("A", "B", ChildConstraint::at_least(1));

    Theorem5Instance {
        tree,
        satisfiability_dtd,
        validity_dtd,
        variable_events,
    }
}

impl Theorem5Instance {
    /// Translates a DTD-satisfiability witness valuation back into a SAT
    /// assignment of the original variables.
    pub fn to_sat_assignment(&self, valuation: &Valuation) -> Vec<bool> {
        self.variable_events
            .iter()
            .map(|&e| valuation.get(e))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::satisfiability::{
        satisfiable_backtracking, satisfiable_bruteforce, valid_bruteforce,
    };
    use pxml_sat::brute::solve_brute;
    use pxml_sat::cnf::Var;
    use pxml_sat::gen3sat::{random_3sat, ThreeSatConfig};
    use pxml_sat::solve_dpll;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn p(v: u32) -> Lit {
        Lit::pos(Var(v))
    }
    fn n(v: u32) -> Lit {
        Lit::neg(Var(v))
    }

    #[test]
    fn reduction_shape_is_linear() {
        let mut cnf = Cnf::new(3);
        cnf.add_clause(vec![p(0), n(1)]);
        cnf.add_clause(vec![p(1), p(2), n(0)]);
        let instance = reduce_sat(&cnf);
        assert_eq!(instance.tree.num_nodes(), 3); // A + one B per clause
        assert_eq!(instance.tree.num_literals(), 5);
        assert_eq!(instance.tree.events().len(), 3);
    }

    #[test]
    fn satisfiable_formula_gives_dtd_satisfiable_instance() {
        // (x0 ∨ x1) ∧ (¬x0 ∨ x1): satisfiable (x1 = true).
        let mut cnf = Cnf::new(2);
        cnf.add_clause(vec![p(0), p(1)]);
        cnf.add_clause(vec![n(0), p(1)]);
        assert!(solve_dpll(&cnf).is_some());
        let instance = reduce_sat(&cnf);
        let witness = satisfiable_bruteforce(&instance.tree, &instance.satisfiability_dtd, 20)
            .unwrap()
            .expect("DTD-satisfiable");
        // The witness valuation is a satisfying SAT assignment.
        let assignment = instance.to_sat_assignment(&witness);
        assert!(cnf.eval(&assignment));
        // And the formula being satisfiable, validity w.r.t. the validity
        // DTD fails (there is a world with no B child).
        assert!(valid_bruteforce(&instance.tree, &instance.validity_dtd, 20)
            .unwrap()
            .is_some());
    }

    #[test]
    fn unsatisfiable_formula_gives_dtd_unsatisfiable_instance() {
        // (x0) ∧ (¬x0)
        let mut cnf = Cnf::new(1);
        cnf.add_clause(vec![p(0)]);
        cnf.add_clause(vec![n(0)]);
        assert!(solve_dpll(&cnf).is_none());
        let instance = reduce_sat(&cnf);
        assert!(
            satisfiable_bruteforce(&instance.tree, &instance.satisfiability_dtd, 20)
                .unwrap()
                .is_none()
        );
        // θ unsatisfiable ⇒ every world has a B child ⇒ the validity DTD is
        // satisfied by every world.
        assert!(valid_bruteforce(&instance.tree, &instance.validity_dtd, 20)
            .unwrap()
            .is_none());
    }

    #[test]
    fn reduction_agrees_with_dpll_on_random_3sat() {
        let mut rng = StdRng::seed_from_u64(0x3547);
        for num_vars in [4usize, 6, 8] {
            for _ in 0..5 {
                let cnf = random_3sat(ThreeSatConfig::at_ratio(num_vars, 4.3), &mut rng);
                let sat_dpll = solve_dpll(&cnf).is_some();
                let sat_brute = solve_brute(&cnf).is_some();
                assert_eq!(sat_dpll, sat_brute);
                let instance = reduce_sat(&cnf);
                let (witness, _) =
                    satisfiable_backtracking(&instance.tree, &instance.satisfiability_dtd);
                assert_eq!(
                    witness.is_some(),
                    sat_dpll,
                    "reduction must preserve satisfiability ({num_vars} vars)"
                );
                if let Some(w) = witness {
                    assert!(cnf.eval(&instance.to_sat_assignment(&w)));
                }
            }
        }
    }
}
