//! DTD satisfiability and validity of prob-trees (Theorem 5 (1)–(2)).
//!
//! * *Satisfiability*: is there a possible world of the prob-tree that
//!   satisfies the DTD? NP-complete in the number of event variables (and
//!   linear in the number of nodes). The paper's NP algorithm is "guess a
//!   valuation and check"; we provide both the deterministic exponential
//!   sweep ([`satisfiable_bruteforce`]) — factorized per co-occurrence
//!   component, so it enumerates `Σ_c 2^{|C_i|}` shard states and then
//!   only crosses the condition-distinct classes — and a pruned
//!   backtracking search over the event variables
//!   ([`satisfiable_backtracking`]) that is usually much faster while
//!   remaining exponential in the worst case.
//! * *Validity*: do **all** possible worlds satisfy the DTD?
//!   co-NP-complete; decided by searching for a counterexample world.

use std::collections::HashMap;

use pxml_core::probtree::ProbTree;
use pxml_core::worlds::{WorldEngine, WorldEngineConfig};
use pxml_events::valuation::TooManyValuations;
use pxml_events::{EventId, Valuation};
use pxml_tree::NodeId;

use crate::dtd::Dtd;
use crate::validate::validates;

/// Statistics of a backtracking run (reported by the E8 tables).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Number of branching decisions made.
    pub decisions: u64,
    /// Number of partial assignments pruned by the three-valued check.
    pub pruned: u64,
}

/// Deterministic exponential check: sweep every *world* of the prob-tree
/// (a DTD is a property of worlds, so valuations that give every condition
/// the same truth values are interchangeable) and test each against the
/// DTD. The sweep is factorized: each co-occurrence component is
/// enumerated independently into a shard (`Σ_c 2^{|C_i|}` states, no
/// zero-probability pruning — satisfiability quantifies over *all*
/// worlds), condition-equivalent assignments are merged per shard, and
/// only the deduplicated classes are crossed — with early exit on the
/// first witness. Returns the witness valuation if one exists.
pub fn satisfiable_bruteforce(
    tree: &ProbTree,
    dtd: &Dtd,
    max_events: usize,
) -> Result<Option<Valuation>, TooManyValuations> {
    for valuation in factorized_world_sweep(tree, max_events)? {
        if validates(&tree.value_in_world(&valuation), dtd) {
            return Ok(Some(valuation));
        }
    }
    Ok(None)
}

/// Deterministic exponential validity check: every world must satisfy the
/// DTD. Runs the same factorized world sweep as
/// [`satisfiable_bruteforce`]; returns a counterexample valuation if one
/// exists (i.e. `Ok(None)` means *valid*).
pub fn valid_bruteforce(
    tree: &ProbTree,
    dtd: &Dtd,
    max_events: usize,
) -> Result<Option<Valuation>, TooManyValuations> {
    for valuation in factorized_world_sweep(tree, max_events)? {
        if !validates(&tree.value_in_world(&valuation), dtd) {
            return Ok(Some(valuation));
        }
    }
    Ok(None)
}

/// The shared factorized sweep behind the brute-force checks: unpruned
/// per-component shards crossed into representative joint valuations, one
/// per distinct world. `max_events` bounds the largest component, the
/// total shard work, and (as `2^{max_events}`) the joint combine, so
/// everything the old `2^{|relevant|}` guard accepted still is — and trees
/// with many small components are now sweepable beyond it.
fn factorized_world_sweep(
    tree: &ProbTree,
    max_events: usize,
) -> Result<impl Iterator<Item = Valuation>, TooManyValuations> {
    let engine = WorldEngine::new(tree);
    let config = WorldEngineConfig::for_event_budget(max_events);
    let factorized = engine.sharded_all(&config, max_events)?;
    let num_free = factorized.num_free_events();
    let joint = factorized
        .into_joint_valuations()
        .map_err(|_| TooManyValuations {
            num_events: num_free,
            max_events,
        })?;
    Ok(joint.map(|(v, _)| v))
}

/// Three-valued truth.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Maybe {
    False,
    True,
    Unknown,
}

/// Backtracking satisfiability search over the event variables with a
/// three-valued pruning rule: a partial assignment is abandoned as soon as
/// some constrained, definitely-present node already violates an upper
/// bound with its definitely-present children, or can no longer reach a
/// lower bound even if all undecided children materialize.
///
/// Returns `(witness, stats)`; the witness is `None` when unsatisfiable.
pub fn satisfiable_backtracking(tree: &ProbTree, dtd: &Dtd) -> (Option<Valuation>, SearchStats) {
    let num_events = tree.events().len();
    let mut assignment: Vec<Option<bool>> = vec![None; num_events];
    let mut stats = SearchStats::default();
    let found = search(tree, dtd, &mut assignment, 0, &mut stats);
    let witness = found.then(|| {
        Valuation::from_true_events(
            num_events,
            assignment
                .iter()
                .enumerate()
                .filter(|(_, v)| v.unwrap_or(false))
                .map(|(i, _)| EventId::from_index(i)),
        )
    });
    (witness, stats)
}

fn search(
    tree: &ProbTree,
    dtd: &Dtd,
    assignment: &mut Vec<Option<bool>>,
    next: usize,
    stats: &mut SearchStats,
) -> bool {
    if prune(tree, dtd, assignment) {
        stats.pruned += 1;
        return false;
    }
    if next == assignment.len() {
        // Fully assigned and not pruned: the pruning check is exact on
        // total assignments.
        return true;
    }
    stats.decisions += 1;
    for value in [true, false] {
        assignment[next] = Some(value);
        if search(tree, dtd, assignment, next + 1, stats) {
            return true;
        }
    }
    assignment[next] = None;
    false
}

/// Three-valued presence of every node under a partial assignment.
fn presences(tree: &ProbTree, assignment: &[Option<bool>]) -> HashMap<NodeId, Maybe> {
    let mut out: HashMap<NodeId, Maybe> = HashMap::new();
    for node in tree.tree().iter() {
        let parent = tree.tree().parent(node).map_or(Maybe::True, |p| out[&p]);
        let own = eval_condition3(tree, node, assignment);
        let combined = match (parent, own) {
            (Maybe::False, _) | (_, Maybe::False) => Maybe::False,
            (Maybe::True, Maybe::True) => Maybe::True,
            _ => Maybe::Unknown,
        };
        out.insert(node, combined);
    }
    out
}

fn eval_condition3(tree: &ProbTree, node: NodeId, assignment: &[Option<bool>]) -> Maybe {
    let mut unknown = false;
    for literal in tree.condition(node).literals() {
        match assignment[literal.event.index()] {
            Some(value) => {
                if value != literal.positive {
                    return Maybe::False;
                }
            }
            None => unknown = true,
        }
    }
    if unknown {
        Maybe::Unknown
    } else {
        Maybe::True
    }
}

/// `true` if the partial assignment can already be ruled out. On total
/// assignments this is exactly "the world violates the DTD".
fn prune(tree: &ProbTree, dtd: &Dtd, assignment: &[Option<bool>]) -> bool {
    let presence = presences(tree, assignment);
    for node in tree.tree().iter() {
        // Only definitely-present, constrained parents can already violate
        // the DTD.
        if presence[&node] != Maybe::True {
            continue;
        }
        let label = tree.tree().label(node);
        if !dtd.constrains(label) {
            continue;
        }
        // Count definite and potential children per label.
        let mut definite: HashMap<&str, usize> = HashMap::new();
        let mut potential: HashMap<&str, usize> = HashMap::new();
        for &child in tree.tree().children(node) {
            let child_label = tree.tree().label(child);
            match presence[&child] {
                Maybe::True => {
                    *definite.entry(child_label).or_insert(0) += 1;
                    *potential.entry(child_label).or_insert(0) += 1;
                }
                Maybe::Unknown => {
                    *potential.entry(child_label).or_insert(0) += 1;
                }
                Maybe::False => {}
            }
        }
        // Upper bounds (including forbidden labels) against definite
        // counts.
        for (child_label, count) in &definite {
            let constraint = dtd
                .constraint(label, child_label)
                .expect("parent is constrained");
            if let Some(max) = constraint.max {
                if *count > max {
                    return true;
                }
            }
        }
        // Lower bounds against potential counts.
        for (child_label, constraint) in dtd.child_rules(label) {
            let possible = potential.get(child_label).copied().unwrap_or(0);
            if possible < constraint.min {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtd::ChildConstraint;
    use pxml_core::probtree::figure1_example;
    use pxml_events::{Condition, Literal};

    fn at_most_one_b() -> Dtd {
        let mut dtd = Dtd::new();
        dtd.constrain("A", "B", ChildConstraint::between(0, 1))
            .constrain("A", "C", ChildConstraint::at_least(0))
            .constrain("C", "D", ChildConstraint::at_least(0));
        dtd
    }

    #[test]
    fn figure1_satisfies_a_permissive_dtd() {
        let t = figure1_example();
        let dtd = at_most_one_b();
        let brute = satisfiable_bruteforce(&t, &dtd, 20).unwrap();
        assert!(brute.is_some());
        let (bt, stats) = satisfiable_backtracking(&t, &dtd);
        assert!(bt.is_some());
        assert!(stats.decisions <= 4);
        // The witness really is a valid world.
        let world = t.value_in_world(&bt.unwrap());
        assert!(validates(&world, &dtd));
    }

    #[test]
    fn unsatisfiable_dtd_is_detected_by_both_algorithms() {
        // Require at least one "Z" child of A — never present.
        let t = figure1_example();
        let mut dtd = Dtd::new();
        dtd.constrain("A", "Z", ChildConstraint::at_least(1))
            .constrain("A", "B", ChildConstraint::at_least(0))
            .constrain("A", "C", ChildConstraint::at_least(0));
        assert!(satisfiable_bruteforce(&t, &dtd, 20).unwrap().is_none());
        let (witness, _) = satisfiable_backtracking(&t, &dtd);
        assert!(witness.is_none());
    }

    #[test]
    fn validity_detects_counterexamples() {
        // Require a D child under every C: the worlds where w2 is false
        // violate it.
        let t = figure1_example();
        let mut dtd = Dtd::new();
        dtd.constrain("C", "D", ChildConstraint::at_least(1));
        let counterexample = valid_bruteforce(&t, &dtd, 20).unwrap();
        assert!(counterexample.is_some());
        let world = t.value_in_world(&counterexample.unwrap());
        assert!(!validates(&world, &dtd));
        // The trivial DTD is always valid.
        assert!(valid_bruteforce(&t, &Dtd::new(), 20).unwrap().is_none());
    }

    #[test]
    fn backtracking_agrees_with_bruteforce_on_random_instances() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xD7D);
        for _ in 0..40 {
            // Random prob-tree: root R, children labeled L0/L1 with random
            // 1-literal conditions over 5 events.
            let mut t = ProbTree::new("R");
            let events: Vec<_> = (0..5).map(|_| t.events_mut().fresh(0.5)).collect();
            let root = t.tree().root();
            for _ in 0..rng.gen_range(2..6usize) {
                let label = ["L0", "L1"][rng.gen_range(0..2usize)];
                let lit = Literal {
                    event: events[rng.gen_range(0..events.len())],
                    positive: rng.gen_bool(0.5),
                };
                t.add_child(root, label, Condition::of(lit));
            }
            // Random DTD bounding both labels.
            let mut dtd = Dtd::new();
            dtd.constrain(
                "R",
                "L0",
                ChildConstraint::between(rng.gen_range(0..2), rng.gen_range(1..3)),
            )
            .constrain(
                "R",
                "L1",
                ChildConstraint::between(rng.gen_range(0..2), rng.gen_range(1..3)),
            );
            let brute = satisfiable_bruteforce(&t, &dtd, 20).unwrap().is_some();
            let (witness, _) = satisfiable_backtracking(&t, &dtd);
            assert_eq!(brute, witness.is_some(), "tree:\n{}", t.to_ascii());
            if let Some(w) = witness {
                assert!(validates(&t.value_in_world(&w), &dtd));
            }
        }
    }

    /// The factorized sweep handles trees whose relevant events exceed the
    /// old `2^{|relevant|}` guard, as long as the components are small and
    /// their condition-distinct classes stay within the joint budget: 20
    /// events in 5 components of 4, each component a single 4-literal
    /// condition, give `Σ 2^4 = 80` shard states and `2^5 = 32` joint
    /// classes under a `max_events = 16` budget that refuses `2^20`.
    #[test]
    fn factorized_sweep_handles_many_small_components() {
        let mut t = ProbTree::new("A");
        let root = t.tree().root();
        for _ in 0..5 {
            let w: Vec<_> = (0..4).map(|_| t.events_mut().fresh(0.5)).collect();
            t.add_child(
                root,
                "C",
                Condition::from_literals(w.iter().map(|&e| Literal::pos(e))),
            );
        }
        assert_eq!(t.events().len(), 20);
        // Exactly 3 C children is reachable (choose 3 of 5 conditions
        // true), so the DTD is satisfiable; more than 5 is not.
        let mut dtd = Dtd::new();
        dtd.constrain("A", "C", ChildConstraint::between(3, 3));
        let witness = satisfiable_bruteforce(&t, &dtd, 16).unwrap();
        assert!(witness.is_some());
        assert!(validates(&t.value_in_world(&witness.unwrap()), &dtd));
        let mut impossible = Dtd::new();
        impossible.constrain("A", "C", ChildConstraint::at_least(6));
        assert!(satisfiable_bruteforce(&t, &impossible, 16)
            .unwrap()
            .is_none());
        // Validity: not every world has ≥ 1 C child (all-false exists).
        let mut at_least_one = Dtd::new();
        at_least_one.constrain("A", "C", ChildConstraint::at_least(1));
        let counterexample = valid_bruteforce(&t, &at_least_one, 16).unwrap();
        assert!(counterexample.is_some());
        assert!(!validates(
            &t.value_in_world(&counterexample.unwrap()),
            &at_least_one
        ));
    }

    #[test]
    fn pruning_cuts_the_search_space() {
        // Root A constrained to have zero B children, but it has one
        // unconditioned B child: prune at depth 0 without exploring 2^10
        // assignments.
        let mut t = ProbTree::new("A");
        let root = t.tree().root();
        t.add_child(root, "B", Condition::always());
        for _ in 0..10 {
            let w = t.events_mut().fresh(0.5);
            t.add_child(root, "C", Condition::of(Literal::pos(w)));
        }
        let mut dtd = Dtd::new();
        dtd.constrain("A", "B", ChildConstraint::forbidden())
            .constrain("A", "C", ChildConstraint::at_least(0));
        let (witness, stats) = satisfiable_backtracking(&t, &dtd);
        assert!(witness.is_none());
        assert_eq!(stats.decisions, 0, "the root call should prune immediately");
    }
}
