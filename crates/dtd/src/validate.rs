//! Validation of data trees against unordered DTDs (Definition 13).

use pxml_tree::DataTree;

use crate::dtd::Dtd;

/// `true` iff `tree ⊨ dtd` (Definition 13): for every node whose label is
/// in the DTD's domain, and for every label, the number of children with
/// that label lies within the DTD's bounds. Nodes with unconstrained labels
/// impose no restriction. Linear in the size of the tree.
pub fn validates(tree: &DataTree, dtd: &Dtd) -> bool {
    for node in tree.iter() {
        let label = tree.label(node);
        if !dtd.constrains(label) {
            continue;
        }
        let counts = tree.child_label_counts(node);
        // Upper bounds (and forbidden labels): check every child label that
        // actually occurs.
        for (child_label, count) in &counts {
            let constraint = dtd
                .constraint(label, child_label)
                .expect("parent label is constrained");
            if !constraint.allows(*count) {
                return false;
            }
        }
        // Lower bounds: check every declared rule, including labels with no
        // occurrence at all.
        for (child_label, constraint) in dtd.child_rules(label) {
            let count = counts.get(child_label).copied().unwrap_or(0);
            if count < constraint.min {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtd::ChildConstraint;
    use pxml_tree::builder::TreeSpec;

    fn catalog_dtd() -> Dtd {
        // catalog → item{1..3};  item → name{1..1}, price{0..1}
        let mut dtd = Dtd::new();
        dtd.constrain("catalog", "item", ChildConstraint::between(1, 3))
            .constrain("item", "name", ChildConstraint::between(1, 1))
            .constrain("item", "price", ChildConstraint::between(0, 1));
        dtd
    }

    #[test]
    fn valid_document() {
        let tree = TreeSpec::node(
            "catalog",
            vec![
                TreeSpec::node(
                    "item",
                    vec![TreeSpec::leaf("name"), TreeSpec::leaf("price")],
                ),
                TreeSpec::node("item", vec![TreeSpec::leaf("name")]),
            ],
        )
        .build();
        assert!(validates(&tree, &catalog_dtd()));
    }

    #[test]
    fn missing_required_child_is_invalid() {
        let tree = TreeSpec::node("catalog", vec![TreeSpec::node("item", vec![])]).build();
        assert!(!validates(&tree, &catalog_dtd()), "item lacks its name");
    }

    #[test]
    fn exceeding_max_is_invalid() {
        let tree = TreeSpec::node(
            "catalog",
            vec![
                TreeSpec::node("item", vec![TreeSpec::leaf("name")]),
                TreeSpec::node("item", vec![TreeSpec::leaf("name")]),
                TreeSpec::node("item", vec![TreeSpec::leaf("name")]),
                TreeSpec::node("item", vec![TreeSpec::leaf("name")]),
            ],
        )
        .build();
        assert!(!validates(&tree, &catalog_dtd()), "too many items");
    }

    #[test]
    fn unlisted_child_labels_are_forbidden_under_constrained_parents() {
        let tree = TreeSpec::node(
            "catalog",
            vec![
                TreeSpec::node("item", vec![TreeSpec::leaf("name")]),
                TreeSpec::leaf("advert"),
            ],
        )
        .build();
        assert!(!validates(&tree, &catalog_dtd()));
    }

    #[test]
    fn unconstrained_labels_impose_nothing() {
        // "misc" is not in the DTD domain, so its children are free.
        let tree = TreeSpec::node(
            "misc",
            vec![TreeSpec::leaf("anything"), TreeSpec::leaf("goes")],
        )
        .build();
        assert!(validates(&tree, &catalog_dtd()));
    }

    #[test]
    fn empty_dtd_accepts_everything() {
        let tree = TreeSpec::node("x", vec![TreeSpec::leaf("y")]).build();
        assert!(validates(&tree, &Dtd::new()));
    }

    #[test]
    fn root_only_tree_with_lower_bound_is_invalid() {
        // The Theorem 5 validity DTD: D(A) = {(B, 1, +∞)} rejects the
        // root-only tree.
        let mut dtd = Dtd::new();
        dtd.constrain("A", "B", ChildConstraint::at_least(1));
        let root_only = TreeSpec::leaf("A").build();
        assert!(!validates(&root_only, &dtd));
        let with_b = TreeSpec::node("A", vec![TreeSpec::leaf("B")]).build();
        assert!(validates(&with_b, &dtd));
    }
}
