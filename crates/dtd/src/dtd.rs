//! The unordered DTD model (Definition 12 of the paper).

use std::collections::HashMap;

/// Occurrence bounds for children with one label under one parent label.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ChildConstraint {
    /// Minimum number of occurrences (`D−`).
    pub min: usize,
    /// Maximum number of occurrences (`D+`); `None` means unbounded (`+∞`).
    pub max: Option<usize>,
}

impl ChildConstraint {
    /// `min..=max` occurrences.
    pub fn between(min: usize, max: usize) -> Self {
        ChildConstraint {
            min,
            max: Some(max),
        }
    }

    /// At least `min` occurrences, unbounded above.
    pub fn at_least(min: usize) -> Self {
        ChildConstraint { min, max: None }
    }

    /// Exactly zero occurrences (the label is forbidden).
    pub fn forbidden() -> Self {
        ChildConstraint {
            min: 0,
            max: Some(0),
        }
    }

    /// `true` if `count` occurrences satisfy the constraint.
    pub fn allows(&self, count: usize) -> bool {
        count >= self.min && self.max.is_none_or(|m| count <= m)
    }
}

/// An unordered DTD: a partial map from parent labels to per-child-label
/// occurrence constraints (Definition 12). Parents whose label is not in
/// the domain are unconstrained; for parents in the domain, child labels
/// without an explicit constraint are **forbidden** (`D− = D+ = 0`, as in
/// the paper's notation).
#[derive(Clone, Debug, Default)]
pub struct Dtd {
    rules: HashMap<String, HashMap<String, ChildConstraint>>,
}

impl Dtd {
    /// The empty DTD (every tree is valid).
    pub fn new() -> Self {
        Dtd::default()
    }

    /// Declares (or extends) the rule for `parent_label`, constraining
    /// children labeled `child_label`.
    pub fn constrain(
        &mut self,
        parent_label: impl Into<String>,
        child_label: impl Into<String>,
        constraint: ChildConstraint,
    ) -> &mut Self {
        self.rules
            .entry(parent_label.into())
            .or_default()
            .insert(child_label.into(), constraint);
        self
    }

    /// Declares a parent label as constrained even if no child constraint
    /// is given (all children are then forbidden under it).
    pub fn constrain_parent(&mut self, parent_label: impl Into<String>) -> &mut Self {
        self.rules.entry(parent_label.into()).or_default();
        self
    }

    /// Whether `label` is in the DTD's domain `N'`.
    pub fn constrains(&self, label: &str) -> bool {
        self.rules.contains_key(label)
    }

    /// The constraint `(D−(parent)(child), D+(parent)(child))`. Returns
    /// `None` if the parent label is unconstrained; returns the forbidden
    /// constraint if the parent is constrained but the child label has no
    /// rule.
    pub fn constraint(&self, parent_label: &str, child_label: &str) -> Option<ChildConstraint> {
        let per_child = self.rules.get(parent_label)?;
        Some(
            per_child
                .get(child_label)
                .copied()
                .unwrap_or_else(ChildConstraint::forbidden),
        )
    }

    /// Iterates over the constrained parent labels.
    pub fn constrained_labels(&self) -> impl Iterator<Item = &str> {
        self.rules.keys().map(String::as_str)
    }

    /// Iterates over the child constraints declared for one parent label.
    pub fn child_rules(&self, parent_label: &str) -> impl Iterator<Item = (&str, ChildConstraint)> {
        self.rules
            .get(parent_label)
            .into_iter()
            .flat_map(|m| m.iter().map(|(k, v)| (k.as_str(), *v)))
    }

    /// Number of (parent, child) rules.
    pub fn len(&self) -> usize {
        self.rules.values().map(HashMap::len).sum()
    }

    /// `true` if no label is constrained.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn child_constraint_allows() {
        assert!(ChildConstraint::between(1, 3).allows(2));
        assert!(!ChildConstraint::between(1, 3).allows(0));
        assert!(!ChildConstraint::between(1, 3).allows(4));
        assert!(ChildConstraint::at_least(2).allows(100));
        assert!(!ChildConstraint::at_least(2).allows(1));
        assert!(ChildConstraint::forbidden().allows(0));
        assert!(!ChildConstraint::forbidden().allows(1));
    }

    #[test]
    fn unconstrained_parents_return_none() {
        let mut dtd = Dtd::new();
        dtd.constrain("A", "B", ChildConstraint::between(0, 2));
        assert!(dtd.constrains("A"));
        assert!(!dtd.constrains("B"));
        assert_eq!(dtd.constraint("B", "anything"), None);
    }

    #[test]
    fn constrained_parents_forbid_unlisted_children() {
        let mut dtd = Dtd::new();
        dtd.constrain("A", "B", ChildConstraint::between(0, 2));
        assert_eq!(dtd.constraint("A", "C"), Some(ChildConstraint::forbidden()));
        assert_eq!(
            dtd.constraint("A", "B"),
            Some(ChildConstraint::between(0, 2))
        );
    }

    #[test]
    fn constrain_parent_without_children() {
        let mut dtd = Dtd::new();
        dtd.constrain_parent("A");
        assert!(dtd.constrains("A"));
        assert_eq!(dtd.constraint("A", "B"), Some(ChildConstraint::forbidden()));
        assert_eq!(dtd.len(), 0);
        assert!(!dtd.is_empty());
    }

    #[test]
    fn len_counts_rules() {
        let mut dtd = Dtd::new();
        dtd.constrain("A", "B", ChildConstraint::between(1, 1))
            .constrain("A", "C", ChildConstraint::at_least(0))
            .constrain("B", "D", ChildConstraint::between(0, 5));
        assert_eq!(dtd.len(), 3);
        assert_eq!(dtd.constrained_labels().count(), 2);
        assert_eq!(dtd.child_rules("A").count(), 2);
    }
}
