//! DTD restriction (Theorem 5 (3)).
//!
//! Given a prob-tree `T` and a DTD `D`, the restriction keeps only the
//! possible worlds that satisfy `D`, and asks for a prob-tree `T'` with
//! `{(t, p) ∈ JT K | t ⊨ D} ∼sub JT'K`. The paper shows the answer may be
//! exponentially larger than the input (the witness family constrains the
//! number of `C` children to at most `n` out of `2n` optional ones); the E9
//! experiment measures that growth.

use pxml_core::probtree::ProbTree;
use pxml_core::pwset::PossibleWorldSet;
use pxml_core::semantics::{possible_worlds_normalized, pw_set_to_probtree, PwSetError};
use pxml_events::valuation::TooManyValuations;

use crate::dtd::Dtd;
use crate::validate::validates;

/// Outcome of a DTD restriction.
#[derive(Clone, Debug)]
pub struct DtdRestriction {
    /// The valid worlds (probabilities do not sum to 1 in general).
    pub worlds: PossibleWorldSet,
    /// Number of distinct worlds before restriction.
    pub total_worlds: usize,
    /// Probability mass of the valid worlds.
    pub retained_mass: f64,
}

/// Computes the set of valid worlds `{(t, p) ∈ JT K | t ⊨ D}`. Exponential
/// in the worst case (guarded by `max_events`), but the expansion runs on
/// the factorized shard executor: `Σ_c 2^{|C_i|}` per-component states,
/// with only the condition-distinct classes crossed into joint worlds, so
/// trees with many small co-occurrence components restrict far beyond the
/// old `2^{|relevant|}` guard.
pub fn restrict_to_dtd(
    tree: &ProbTree,
    dtd: &Dtd,
    max_events: usize,
) -> Result<DtdRestriction, TooManyValuations> {
    let normalized = possible_worlds_normalized(tree, max_events)?;
    let total_worlds = normalized.len();
    let worlds = normalized.restrict(&|t| validates(t, dtd));
    let retained_mass = worlds.total_probability();
    Ok(DtdRestriction {
        worlds,
        total_worlds,
        retained_mass,
    })
}

/// Represents the restriction as a prob-tree `T'` with
/// `{(t, p) ∈ JT K | t ⊨ D} ∼sub JT'K` (the lost mass goes to the root-only
/// world, Definition 3). Goes through the generic PW-set → prob-tree
/// construction; Theorem 5 (3) shows the exponential size is unavoidable in
/// general.
pub fn restriction_as_probtree(
    tree: &ProbTree,
    dtd: &Dtd,
    max_events: usize,
) -> Result<Result<ProbTree, PwSetError>, TooManyValuations> {
    let restriction = restrict_to_dtd(tree, dtd, max_events)?;
    let root_label = tree.tree().label(tree.tree().root()).to_string();
    let missing = 1.0 - restriction.retained_mass;
    let mut completed = restriction.worlds.clone();
    if missing > pxml_events::PROB_EPS {
        completed.push(pxml_tree::DataTree::new(root_label), missing);
    }
    Ok(pw_set_to_probtree(&completed.normalized()))
}

/// The Theorem 5 (3) witness family: a root `A` with `2n` optional children
/// `C` (each carrying its own event of probability ½ and a distinguishing
/// `D_i` grandchild), together with the DTD allowing at most `n` `C`
/// children.
pub fn theorem5_restriction_family(n: usize) -> (ProbTree, Dtd) {
    let mut tree = ProbTree::new("A");
    let root = tree.tree().root();
    for i in 0..2 * n {
        let w = tree.events_mut().fresh(0.5);
        let c = tree.add_child(
            root,
            "C",
            pxml_events::Condition::of(pxml_events::Literal::pos(w)),
        );
        // Distinguishing child, as in the paper's proof sketch ("C nodes
        // with a D_i child in order to give them the same label while
        // keeping them distinguishable").
        tree.add_child(c, format!("D{i}"), pxml_events::Condition::always());
    }
    let mut dtd = Dtd::new();
    dtd.constrain("A", "C", crate::dtd::ChildConstraint::between(0, n));
    (tree, dtd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtd::ChildConstraint;
    use pxml_core::probtree::figure1_example;
    use pxml_events::prob_eq;

    #[test]
    fn restriction_on_figure1() {
        // Forbid B children: only the worlds without B survive
        // (0.06 + 0.70 = 0.76).
        let t = figure1_example();
        let mut dtd = Dtd::new();
        dtd.constrain("A", "B", ChildConstraint::forbidden())
            .constrain("A", "C", ChildConstraint::at_least(0));
        let r = restrict_to_dtd(&t, &dtd, 20).unwrap();
        assert_eq!(r.total_worlds, 3);
        assert_eq!(r.worlds.len(), 2);
        assert!(prob_eq(r.retained_mass, 0.76));
    }

    #[test]
    fn restriction_probtree_has_sub_isomorphic_semantics() {
        let t = figure1_example();
        let mut dtd = Dtd::new();
        dtd.constrain("A", "B", ChildConstraint::forbidden())
            .constrain("A", "C", ChildConstraint::at_least(0));
        let restricted = restrict_to_dtd(&t, &dtd, 20).unwrap();
        let rep = restriction_as_probtree(&t, &dtd, 20).unwrap().unwrap();
        let rep_worlds = possible_worlds_normalized(&rep, 20).unwrap();
        assert!(restricted.worlds.isomorphic_sub(&rep_worlds, "A"));
    }

    #[test]
    fn empty_restriction_yields_root_only_probtree() {
        let t = figure1_example();
        // Impossible DTD: at least one Z child.
        let mut dtd = Dtd::new();
        dtd.constrain("A", "Z", ChildConstraint::at_least(1))
            .constrain("A", "B", ChildConstraint::at_least(0))
            .constrain("A", "C", ChildConstraint::at_least(0));
        let r = restrict_to_dtd(&t, &dtd, 20).unwrap();
        assert!(r.worlds.is_empty());
        let rep = restriction_as_probtree(&t, &dtd, 20).unwrap().unwrap();
        assert_eq!(rep.num_nodes(), 1);
    }

    /// DTD restriction on 18 relevant events in 6 components of 3 — a
    /// budget (`max_events = 16`) the streamed engine refuses: 64 joint
    /// classes, of which the DTD keeps the worlds with at most one C.
    #[test]
    fn factorized_restriction_handles_many_small_components() {
        let mut t = ProbTree::new("A");
        let root = t.tree().root();
        for i in 0..6 {
            let w: Vec<_> = (0..3).map(|_| t.events_mut().fresh(0.5)).collect();
            let c = t.add_child(
                root,
                "C",
                pxml_events::Condition::from_literals(
                    w.iter().map(|&e| pxml_events::Literal::pos(e)),
                ),
            );
            t.add_child(c, format!("D{i}"), pxml_events::Condition::always());
        }
        assert_eq!(t.events().len(), 18);
        let mut dtd = Dtd::new();
        dtd.constrain("A", "C", ChildConstraint::between(0, 1))
            .constrain("C", "D0", ChildConstraint::at_least(0));
        for i in 1..6 {
            dtd.constrain("C", format!("D{i}"), ChildConstraint::at_least(0));
        }
        let r = restrict_to_dtd(&t, &dtd, 16).unwrap();
        // 64 distinct worlds (each C_i distinguishable by its D_i child);
        // at most one C: 1 + 6 survive.
        assert_eq!(r.total_worlds, 64);
        assert_eq!(r.worlds.len(), 7);
        let p = 1.0f64 / 8.0;
        let expected = (1.0 - p).powi(6) + 6.0 * p * (1.0 - p).powi(5);
        assert!(prob_eq(r.retained_mass, expected));
    }

    #[test]
    fn theorem5_family_restriction_grows_quickly() {
        let mut sizes = Vec::new();
        for n in 1..=3usize {
            let (tree, dtd) = theorem5_restriction_family(n);
            assert_eq!(tree.events().len(), 2 * n);
            let rep = restriction_as_probtree(&tree, &dtd, 20).unwrap().unwrap();
            sizes.push(rep.size());
            // The number of valid worlds is Σ_{k≤n} C(2n, k) ≥ C(2n, n).
            let r = restrict_to_dtd(&tree, &dtd, 20).unwrap();
            let expected: usize = (0..=n).map(|k| binomial(2 * n, k)).sum();
            assert_eq!(r.worlds.len(), expected);
        }
        assert!(sizes[1] > 2 * sizes[0]);
        assert!(sizes[2] > 2 * sizes[1]);
    }

    fn binomial(n: usize, k: usize) -> usize {
        let mut result = 1usize;
        for i in 0..k {
            result = result * (n - i) / (i + 1);
        }
        result
    }
}
