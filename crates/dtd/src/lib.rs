//! # pxml-dtd — unordered DTDs and DTD problems on prob-trees
//!
//! Section 4 of Senellart & Abiteboul (PODS 2007) studies validating
//! probabilistic trees against Document Type Definitions. Because the data
//! model is unordered, a DTD here simply bounds, for every constrained
//! parent label, the number of children carrying each label
//! (Definition 12). Three problems are studied (Theorem 5):
//!
//! 1. **DTD satisfiability** — is some possible world valid? NP-complete in
//!    the number of event variables.
//! 2. **DTD validity** — are all possible worlds valid? co-NP-complete.
//! 3. **DTD restriction** — represent the valid worlds as a prob-tree;
//!    the output may be exponentially larger than the input.
//!
//! This crate provides the DTD model and data-tree validation
//! ([`dtd`], [`validate`]), exact (exponential) and pruned-backtracking
//! deciders for satisfiability and validity ([`satisfiability`]), the
//! restriction operation ([`restriction`]), and the Theorem 5 reduction
//! from SAT ([`reduction`]) used both for the hardness experiments and as a
//! cross-check against the `pxml-sat` DPLL solver.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dtd;
pub mod reduction;
pub mod restriction;
pub mod satisfiability;
pub mod validate;

pub use dtd::{ChildConstraint, Dtd};
pub use satisfiability::{satisfiable_backtracking, satisfiable_bruteforce, valid_bruteforce};
pub use validate::validates;
