//! Commutative provenance semirings: one condition algebra, many
//! scenarios.
//!
//! The paper's tractability results all hinge on conditions being
//! evaluated by a single fold — multiply along a conjunction, sum over
//! disjoint worlds. That fold is not intrinsically about probability: it
//! works over any **commutative semiring** `(K, ⊕, ⊗, 0, 1)` whose
//! addition and multiplication are associative and commutative, with `0`
//! the `⊕`-identity and `⊗`-annihilator and `1` the `⊗`-identity (Green,
//! Karvounarakis & Tannen's provenance semirings, instantiated for the
//! prob-tree model).
//!
//! [`Semiring`] abstracts the fold; each instance is a new scenario for
//! free, evaluated over the **same** prepared match sets and shard plans:
//!
//! | instance | `K` | answers |
//! |---|---|---|
//! | [`Probability`] | `f64` | Definition 8's `eval` — the classic path |
//! | [`Possibility`] | `bool` | "is this answer possible at all?" (the possibility problem) |
//! | [`Counting`] | `u64` | model counts over the event universe (cross-checked against `pxml_sat`) |
//! | [`TopKProofs`] | proof sets | the `k` most probable literal conjunctions explaining an answer |
//! | [`Lineage`] | event-id sets | why-provenance: which base events the answer depends on |
//!
//! The probability path stays the specialized fast path: `Probability`'s
//! operations monomorphize to plain `f64` arithmetic in the exact
//! sequence the pre-semiring code used, so
//! [`Condition::probability`](crate::Condition::probability) is
//! bit-identical to its hand-rolled ancestor (property-tested in the
//! integration suite).

use std::collections::BTreeSet;
use std::fmt;

use crate::condition::Literal;
use crate::event::{EventId, EventTable};

/// A commutative semiring `(K, ⊕, ⊗, 0, 1)` interpreting condition
/// literals, plus the structural hooks the engines key on (zero tests for
/// pruning, certainty for the update simplifier, unmentioned-event factors
/// for counting-style instances).
///
/// Instances are **values**, not just types, so an instance can carry
/// parameters (e.g. [`TopKProofs`]'s bound `k`).
///
/// # Laws
///
/// For all `a`, `b`, `c` produced by `zero`/`one`/`literal` and closed
/// under `add`/`mul` (property-tested in `tests/tests/semirings.rs`):
///
/// * `add` and `mul` are associative and commutative;
/// * `add(a, zero()) = a`, `mul(a, one()) = a`, `mul(a, zero()) = zero()`;
/// * `mul(a, add(b, c)) = add(mul(a, b), mul(a, c))` whenever `b` and `c`
///   arise from **disjoint** events (the only shape of addition the
///   engines perform: sums over mutually exclusive worlds). Bounded
///   instances like [`TopKProofs`] distribute exactly in this disjoint
///   regime once the bound is large enough to hold both sides.
pub trait Semiring {
    /// The carrier `K`.
    type Value: Clone + PartialEq + fmt::Debug;

    /// The additive identity `0` (the value of an impossible condition).
    fn zero(&self) -> Self::Value;

    /// The multiplicative identity `1` (the value of the empty, always
    /// true condition).
    fn one(&self) -> Self::Value;

    /// Semiring addition `⊕`, combining values of mutually exclusive
    /// alternatives.
    fn add(&self, a: Self::Value, b: Self::Value) -> Self::Value;

    /// Semiring multiplication `⊗`, combining values of independent
    /// conjuncts.
    fn mul(&self, a: Self::Value, b: Self::Value) -> Self::Value;

    /// The interpretation of one literal under the event distribution.
    fn literal(&self, literal: Literal, events: &EventTable) -> Self::Value;

    /// `true` iff `value` is the additive identity — the test pruning
    /// passes key on ("this branch contributes nothing").
    fn is_zero(&self, value: &Self::Value) -> bool;

    /// `true` when unmentioned events contribute a non-identity factor to
    /// a conjunction's value, i.e. [`Semiring::unmentioned`] must be
    /// folded in for every event the condition does not constrain.
    ///
    /// Defaults to `false`: for probability-like instances the two
    /// branches of an unconstrained event add up to `1` analytically, so
    /// the fold skips the whole event sweep (this keeps the `Probability`
    /// fast path `O(|literals|)` and bit-identical to the pre-semiring
    /// code — summing `π + (1 − π)` in floating point would not be).
    fn constrains_unmentioned(&self) -> bool {
        false
    }

    /// The factor an event **not mentioned** by the condition contributes
    /// to a conjunction fold (only consulted when
    /// [`Semiring::constrains_unmentioned`] is `true`). [`Counting`]
    /// returns `2`: both truth values of a free variable extend a model.
    fn unmentioned(&self, event: EventId, events: &EventTable) -> Self::Value {
        let _ = (event, events);
        self.one()
    }

    /// `true` iff the literal holds in every world of non-zero semiring
    /// mass — i.e. its negation annihilates. This is the semiring-generic
    /// notion of certainty the update simplifier's `prune_certain` pass
    /// keys on: under [`Probability`], `literal_certain(w)` iff
    /// `π(w) = 1`.
    fn literal_certain(&self, literal: Literal, events: &EventTable) -> bool {
        self.is_zero(&self.literal(literal.negated(), events))
    }

    /// `true` iff `value` is **additively absorbing**: `add(value, b) =
    /// value` for every `b` this instance can produce, so an `⊕`-fold that
    /// reaches it may stop early. Exponential DNF sweeps
    /// ([`crate::Dnf::eval_in`]) key on this to short-circuit: under
    /// [`Possibility`], `true` absorbs after the first satisfying world.
    ///
    /// Defaults to `false` — always sound, never early-exits. Instances
    /// must only return `true` for values no reachable `add` can change
    /// ([`Probability`] and [`Counting`] have no such value short of
    /// overflow; [`TopKProofs`] only at `k = 1` once the rank-minimal
    /// empty proof is held).
    fn is_absorbing(&self, value: &Self::Value) -> bool {
        let _ = value;
        false
    }

    /// Distinguishes differently-parameterized instances of the **same**
    /// semiring type for value caching (the prepared-query maintenance
    /// cache keys on `(TypeId, cache_token)`): two instances sharing a
    /// type and token must produce identical values for identical inputs.
    /// Parameter-free instances keep the default `0`; [`TopKProofs`]
    /// returns its bound `k`.
    fn cache_token(&self) -> u64 {
        0
    }
}

/// The probability semiring `([0, 1], +, ·, 0, 1)` — Definition 8's
/// `eval`, and the workspace's specialized fast path: every operation
/// monomorphizes to the exact `f64` arithmetic the pre-semiring folds
/// performed, in the same order, so results are bit-identical.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Probability;

impl Semiring for Probability {
    type Value = f64;

    fn zero(&self) -> f64 {
        0.0
    }

    fn one(&self) -> f64 {
        1.0
    }

    fn add(&self, a: f64, b: f64) -> f64 {
        a + b
    }

    fn mul(&self, a: f64, b: f64) -> f64 {
        a * b
    }

    fn literal(&self, literal: Literal, events: &EventTable) -> f64 {
        literal.prob(events)
    }

    fn is_zero(&self, value: &f64) -> bool {
        *value == 0.0
    }
}

/// The boolean semiring `({⊥, ⊤}, ∨, ∧, ⊥, ⊤)` — the *possibility
/// problem*: is there **any** positive-probability world where the
/// condition holds? A positive literal is always possible (the table
/// enforces `π > 0`); a negative literal is possible iff `π < 1`.
///
/// Bridge law (property-tested): `Possibility ≡ (Probability > 0)`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Possibility;

impl Semiring for Possibility {
    type Value = bool;

    fn zero(&self) -> bool {
        false
    }

    fn one(&self) -> bool {
        true
    }

    fn add(&self, a: bool, b: bool) -> bool {
        a || b
    }

    fn mul(&self, a: bool, b: bool) -> bool {
        a && b
    }

    fn literal(&self, literal: Literal, events: &EventTable) -> bool {
        literal.prob(events) > 0.0
    }

    fn is_zero(&self, value: &bool) -> bool {
        !*value
    }

    fn is_absorbing(&self, value: &bool) -> bool {
        // `true ∨ b = true` for every `b`: one satisfying world settles
        // the possibility question.
        *value
    }
}

/// The counting semiring `(ℕ, +, ×, 0, 1)` over the **whole event
/// universe**: a consistent conjunction of `ℓ` literals over an `n`-event
/// table has `2^{n−ℓ}` models, so unmentioned events contribute a factor
/// of `2` each ([`Semiring::constrains_unmentioned`]).
///
/// Bridge law (property-tested): a condition's count equals
/// `pxml_sat::count_models_brute` of its unit-clause CNF encoding.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counting;

impl Semiring for Counting {
    type Value = u64;

    fn zero(&self) -> u64 {
        0
    }

    fn one(&self) -> u64 {
        1
    }

    fn add(&self, a: u64, b: u64) -> u64 {
        a + b
    }

    fn mul(&self, a: u64, b: u64) -> u64 {
        a * b
    }

    fn literal(&self, _literal: Literal, _events: &EventTable) -> u64 {
        1
    }

    fn is_zero(&self, value: &u64) -> bool {
        *value == 0
    }

    fn constrains_unmentioned(&self) -> bool {
        true
    }

    fn unmentioned(&self, _event: EventId, _events: &EventTable) -> u64 {
        2
    }
}

/// The lineage (why-provenance) semiring: which base events does a value
/// depend on at all? `None` is the annihilating `0` (impossible); a
/// possible value carries the set of events consulted. Both `⊕` and `⊗`
/// are set union on possible values — union is associative, commutative,
/// idempotent and self-distributive, so the laws hold with `⊕ = ⊗`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Lineage;

impl Semiring for Lineage {
    type Value = Option<BTreeSet<EventId>>;

    fn zero(&self) -> Self::Value {
        None
    }

    fn one(&self) -> Self::Value {
        Some(BTreeSet::new())
    }

    fn add(&self, a: Self::Value, b: Self::Value) -> Self::Value {
        match (a, b) {
            (None, x) | (x, None) => x,
            (Some(mut a), Some(b)) => {
                a.extend(b);
                Some(a)
            }
        }
    }

    fn mul(&self, a: Self::Value, b: Self::Value) -> Self::Value {
        match (a, b) {
            (None, _) | (_, None) => None,
            (Some(mut a), Some(b)) => {
                a.extend(b);
                Some(a)
            }
        }
    }

    fn literal(&self, literal: Literal, _events: &EventTable) -> Self::Value {
        Some(BTreeSet::from([literal.event]))
    }

    fn is_zero(&self, value: &Self::Value) -> bool {
        value.is_none()
    }
}

/// One proof inside a [`TopKProofs`] value: a consistent conjunction of
/// literals sufficient for the condition, with the per-literal
/// probability weights it was built from. Kept sorted by literal; the
/// proof's weight is the product of its literal weights.
#[derive(Clone, Debug, PartialEq)]
pub struct Proof {
    literals: Vec<(Literal, f64)>,
}

impl Proof {
    /// The empty proof (no literals, weight 1) — the `⊗`-identity.
    pub fn empty() -> Self {
        Proof {
            literals: Vec::new(),
        }
    }

    /// The literals of the proof, sorted.
    pub fn literals(&self) -> impl Iterator<Item = Literal> + '_ {
        self.literals.iter().map(|&(l, _)| l)
    }

    /// Number of literals.
    pub fn len(&self) -> usize {
        self.literals.len()
    }

    /// `true` for the empty proof.
    pub fn is_empty(&self) -> bool {
        self.literals.is_empty()
    }

    /// The probability weight of the proof: the product of its literal
    /// weights.
    pub fn weight(&self) -> f64 {
        self.literals.iter().map(|&(_, w)| w).product()
    }

    /// Merges two proofs into their conjunction: `None` if they are
    /// contradictory (one contains a literal the other negates),
    /// otherwise the sorted, deduplicated merge.
    fn conjoin(&self, other: &Proof) -> Option<Proof> {
        let (a, b) = (&self.literals, &other.literals);
        let mut literals = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => {
                    if a[i].0.event == b[j].0.event {
                        return None; // w ∧ ¬w
                    }
                    literals.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    if a[i].0.event == b[j].0.event {
                        return None; // w ∧ ¬w
                    }
                    literals.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    literals.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        literals.extend_from_slice(&a[i..]);
        literals.extend_from_slice(&b[j..]);
        Some(Proof { literals })
    }

    /// Total rank order: weight descending, then the literal list
    /// lexicographically (deterministic across runs).
    fn rank(&self, other: &Proof) -> std::cmp::Ordering {
        other.weight().total_cmp(&self.weight()).then_with(|| {
            self.literals
                .iter()
                .map(|&(l, _)| l)
                .cmp(other.literals.iter().map(|&(l, _)| l))
        })
    }
}

/// The bounded top-`k`-proofs semiring (a Viterbi-style instance): a value
/// is the set of the `k` most probable distinct proofs, kept sorted by
/// weight descending (ties broken by literal order, so values are
/// canonical). `⊕` merges two proof sets and keeps the best `k`; `⊗`
/// conjoins proofs pairwise, drops contradictions, and keeps the best
/// `k`.
///
/// Truncation makes distributivity hold only when the bound is large
/// enough to hold both sides — which it always is for the disjoint,
/// within-bound additions the engines perform (see the trait-level laws).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TopKProofs {
    /// Maximum number of proofs a value retains.
    pub k: usize,
}

impl TopKProofs {
    /// A top-`k`-proofs semiring retaining at most `k` proofs per value.
    pub fn new(k: usize) -> Self {
        TopKProofs { k: k.max(1) }
    }

    /// Sorts by rank, drops duplicates and zero-weight proofs, truncates
    /// to `k` — the canonical form every operation re-establishes.
    fn canonicalize(&self, mut proofs: Vec<Proof>) -> Vec<Proof> {
        proofs.retain(|p| p.weight() > 0.0);
        proofs.sort_by(Proof::rank);
        proofs.dedup_by(|a, b| a.literals == b.literals);
        proofs.truncate(self.k);
        proofs
    }
}

impl Semiring for TopKProofs {
    type Value = Vec<Proof>;

    fn zero(&self) -> Vec<Proof> {
        Vec::new()
    }

    fn one(&self) -> Vec<Proof> {
        vec![Proof::empty()]
    }

    fn add(&self, mut a: Vec<Proof>, b: Vec<Proof>) -> Vec<Proof> {
        a.extend(b);
        self.canonicalize(a)
    }

    fn mul(&self, a: Vec<Proof>, b: Vec<Proof>) -> Vec<Proof> {
        let mut out = Vec::with_capacity(a.len() * b.len());
        for pa in &a {
            for pb in &b {
                if let Some(conjoined) = pa.conjoin(pb) {
                    out.push(conjoined);
                }
            }
        }
        self.canonicalize(out)
    }

    fn literal(&self, literal: Literal, events: &EventTable) -> Vec<Proof> {
        let weight = literal.prob(events);
        if weight <= 0.0 {
            return Vec::new();
        }
        vec![Proof {
            literals: vec![(literal, weight)],
        }]
    }

    fn is_zero(&self, value: &Vec<Proof>) -> bool {
        value.is_empty()
    }

    fn is_absorbing(&self, value: &Vec<Proof>) -> bool {
        // Only `k = 1` admits an absorbing value: the empty proof has
        // weight 1 and is rank-minimal (ties on weight break toward the
        // lexicographically smaller literal list), so no merged proof can
        // displace it. For `k > 1` any value can still gain proofs.
        self.k == 1 && value.first().is_some_and(Proof::is_empty)
    }

    fn cache_token(&self) -> u64 {
        self.k as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> (EventTable, EventId, EventId, EventId) {
        let mut t = EventTable::new();
        let w1 = t.insert("w1", 0.8);
        let w2 = t.insert("w2", 0.7);
        let sure = t.insert("sure", 1.0);
        (t, w1, w2, sure)
    }

    #[test]
    fn probability_monomorphizes_to_plain_arithmetic() {
        let (t, w1, w2, _) = table();
        let s = Probability;
        assert_eq!(s.mul(s.one(), s.literal(Literal::pos(w1), &t)), 0.8);
        let v = s.mul(
            s.literal(Literal::pos(w1), &t),
            s.literal(Literal::neg(w2), &t),
        );
        assert_eq!(v.to_bits(), (0.8f64 * (1.0 - 0.7)).to_bits());
        assert!(s.is_zero(&0.0));
        assert!(!s.is_zero(&1e-300));
    }

    #[test]
    fn certainty_is_keyed_on_annihilating_negations() {
        let (t, w1, _, sure) = table();
        let s = &Probability as &dyn Semiring<Value = f64>;
        assert!(s.literal_certain(Literal::pos(sure), &t));
        assert!(!s.literal_certain(Literal::neg(sure), &t));
        assert!(!s.literal_certain(Literal::pos(w1), &t));
        assert!(Possibility.literal_certain(Literal::pos(sure), &t));
        assert!(!Possibility.literal_certain(Literal::pos(w1), &t));
        // Counting and Lineage ignore π: nothing is certain.
        assert!(!Counting.literal_certain(Literal::pos(sure), &t));
        assert!(!Lineage.literal_certain(Literal::pos(sure), &t));
    }

    #[test]
    fn possibility_tracks_positive_probability() {
        let (t, w1, _, sure) = table();
        assert!(Possibility.literal(Literal::pos(w1), &t));
        assert!(Possibility.literal(Literal::neg(w1), &t));
        assert!(Possibility.literal(Literal::pos(sure), &t));
        assert!(!Possibility.literal(Literal::neg(sure), &t));
    }

    #[test]
    fn counting_doubles_per_unmentioned_event() {
        let (t, w1, _, _) = table();
        assert!(Counting.constrains_unmentioned());
        assert_eq!(Counting.unmentioned(w1, &t), 2);
        assert_eq!(
            Counting.mul(Counting.one(), Counting.literal(Literal::pos(w1), &t)),
            1
        );
    }

    #[test]
    fn lineage_unions_and_annihilates() {
        let (t, w1, w2, _) = table();
        let s = Lineage;
        let a = s.literal(Literal::pos(w1), &t);
        let b = s.literal(Literal::neg(w2), &t);
        let ab = s.mul(a.clone(), b.clone());
        assert_eq!(ab, Some(BTreeSet::from([w1, w2])));
        assert_eq!(s.add(a.clone(), s.zero()), a);
        assert_eq!(s.mul(b, s.zero()), None);
        assert!(s.is_zero(&s.zero()));
        assert!(!s.is_zero(&s.one()));
    }

    #[test]
    fn absorbing_values_are_add_fixpoints() {
        let (t, w1, w2, _) = table();
        // Probability, Counting and Lineage have no absorbing values.
        assert!(!Probability.is_absorbing(&1.0));
        assert!(!Counting.is_absorbing(&u64::MAX));
        assert!(!Lineage.is_absorbing(&Lineage.one()));
        // Possibility: `true` absorbs, `false` does not.
        assert!(Possibility.is_absorbing(&true));
        assert!(!Possibility.is_absorbing(&false));
        // Top-1: only the rank-minimal empty proof absorbs — merging any
        // proof into it leaves it in place.
        let top1 = TopKProofs::new(1);
        assert!(top1.is_absorbing(&top1.one()));
        let single = top1.literal(Literal::pos(w1), &t);
        assert!(!top1.is_absorbing(&single));
        assert!(!top1.is_absorbing(&top1.zero()));
        assert_eq!(top1.add(top1.one(), single.clone()), top1.one());
        assert_eq!(
            top1.add(top1.one(), top1.literal(Literal::pos(w2), &t)),
            top1.one()
        );
        // Top-2 values can always gain a proof: nothing absorbs.
        let top2 = TopKProofs::new(2);
        assert!(!top2.is_absorbing(&top2.one()));
        // Cache tokens distinguish differently-bounded instances.
        assert_eq!(Probability.cache_token(), 0);
        assert_ne!(top1.cache_token(), top2.cache_token());
    }

    #[test]
    fn top_k_proofs_rank_merge_and_truncate() {
        let (t, w1, w2, sure) = table();
        let s = TopKProofs::new(2);
        let a = s.literal(Literal::pos(w1), &t); // weight 0.8
        let b = s.literal(Literal::pos(w2), &t); // weight 0.7
        let c = s.literal(Literal::neg(w2), &t); // weight 1 − 0.7
                                                 // add keeps the best k in rank order.
        let merged = s.add(s.add(a.clone(), b.clone()), c.clone());
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].weight(), 0.8);
        assert_eq!(merged[1].weight(), 0.7);
        // mul conjoins pairwise and drops contradictions.
        let bc = s.mul(s.add(b, c.clone()), c);
        assert_eq!(bc.len(), 1, "w2 ∧ ¬w2 dropped, ¬w2 ∧ ¬w2 deduplicated");
        assert_eq!(bc[0].weight(), 1.0 - 0.7);
        // Zero-weight literals are no proof at all.
        assert!(s.is_zero(&s.literal(Literal::neg(sure), &t)));
        // Identities.
        assert_eq!(s.mul(a.clone(), s.one()), a);
        assert_eq!(s.add(a.clone(), s.zero()), a);
        assert!(s.mul(a, s.zero()).is_empty());
    }
}
