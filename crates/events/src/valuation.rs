//! Valuations of event variables.
//!
//! A valuation corresponds to a choice `V ⊆ W` of the events that are true;
//! the possible-world semantics of a prob-tree enumerates all of them
//! (Definition 4). Valuations are stored as compact bitsets.

use crate::condition::Literal;
use crate::event::{EventId, EventTable};
use crate::semiring::{Probability, Semiring};

/// A truth assignment for the event variables of one [`EventTable`].
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Valuation {
    bits: Vec<u64>,
    len: usize,
}

impl Valuation {
    /// The all-false valuation over `len` events.
    pub fn empty(len: usize) -> Self {
        Valuation {
            bits: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// The all-true valuation over `len` events.
    pub fn full(len: usize) -> Self {
        let mut v = Valuation::empty(len);
        for i in 0..len {
            v.set(EventId::from_index(i), true);
        }
        v
    }

    /// Builds a valuation from the set of true events.
    pub fn from_true_events<I: IntoIterator<Item = EventId>>(len: usize, events: I) -> Self {
        let mut v = Valuation::empty(len);
        for e in events {
            v.set(e, true);
        }
        v
    }

    /// Number of event variables covered by this valuation.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the valuation covers no event variables.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The truth value of `event`.
    #[inline]
    pub fn get(&self, event: EventId) -> bool {
        let i = event.index();
        debug_assert!(i < self.len, "event {i} out of range {}", self.len);
        (self.bits[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets the truth value of `event`.
    #[inline]
    pub fn set(&mut self, event: EventId, value: bool) {
        let i = event.index();
        debug_assert!(i < self.len, "event {i} out of range {}", self.len);
        if value {
            self.bits[i / 64] |= 1 << (i % 64);
        } else {
            self.bits[i / 64] &= !(1 << (i % 64));
        }
    }

    /// Sets every event that is true in `other` to true in `self` (bitwise
    /// union). The factorized world engine combines per-component partial
    /// assignments into a joint valuation this way: components assign
    /// disjoint event sets, so the union of their representatives is the
    /// joint assignment.
    ///
    /// # Panics
    /// Panics if the two valuations cover a different number of events.
    pub fn union_with(&mut self, other: &Valuation) {
        assert_eq!(
            self.len, other.len,
            "cannot union valuations over different event counts"
        );
        for (word, other_word) in self.bits.iter_mut().zip(&other.bits) {
            *word |= other_word;
        }
    }

    /// The number of true events.
    pub fn count_true(&self) -> usize {
        self.bits.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Iterates over the events that are true.
    pub fn true_events(&self) -> impl Iterator<Item = EventId> + '_ {
        (0..self.len)
            .map(EventId::from_index)
            .filter(move |&e| self.get(e))
    }

    /// Probability of this valuation under the independent distribution of
    /// `events`: `Π_{w ∈ V} π(w) · Π_{w ∉ V} (1 − π(w))` (Definition 4).
    ///
    /// The valuation may cover a *prefix* of the table (a partial
    /// valuation): events the valuation does not cover are marginalized
    /// analytically — their true and false branches sum to 1, so they
    /// contribute a factor of 1 and the result is the marginal probability
    /// of the partial assignment.
    pub fn probability(&self, events: &EventTable) -> f64 {
        self.weight_in(&Probability, events)
    }

    /// Semiring-generic weight of the valuation: the `mul`-fold, in event
    /// order, of the literal each covered event realizes (`w` if true,
    /// `¬w` if false). Under [`Probability`] this is exactly
    /// [`Valuation::probability`] — same operations, same order,
    /// bit-identical results.
    pub fn weight_in<S: Semiring>(&self, semiring: &S, events: &EventTable) -> S::Value {
        assert!(
            self.len <= events.len(),
            "valuation covers {} events but the table declares only {}",
            self.len,
            events.len()
        );
        let mut acc = semiring.one();
        for e in (0..self.len).map(EventId::from_index) {
            let literal = if self.get(e) {
                Literal::pos(e)
            } else {
                Literal::neg(e)
            };
            acc = semiring.mul(acc, semiring.literal(literal, events));
        }
        acc
    }

    /// Marginal probability of the partial assignment this valuation makes
    /// to `subset` only: `Π_{w ∈ subset ∩ V} π(w) · Π_{w ∈ subset ∖ V}
    /// (1 − π(w))`. Events outside `subset` are marginalized analytically
    /// (factor 1). This is the workhorse of the relevant-event world
    /// engine, which assigns truth values only to the events actually
    /// mentioned by a prob-tree's conditions.
    pub fn probability_over<I: IntoIterator<Item = EventId>>(
        &self,
        events: &EventTable,
        subset: I,
    ) -> f64 {
        self.weight_over_in(&Probability, events, subset)
    }

    /// Semiring-generic marginal weight of the partial assignment this
    /// valuation makes to `subset` only (see
    /// [`Valuation::probability_over`], which is this fold under
    /// [`Probability`] — bit-identical).
    pub fn weight_over_in<S: Semiring, I: IntoIterator<Item = EventId>>(
        &self,
        semiring: &S,
        events: &EventTable,
        subset: I,
    ) -> S::Value {
        let mut acc = semiring.one();
        for e in subset {
            let literal = if self.get(e) {
                Literal::pos(e)
            } else {
                Literal::neg(e)
            };
            acc = semiring.mul(acc, semiring.literal(literal, events));
        }
        acc
    }
}

/// Error returned when an exhaustive enumeration over `2^{|W|}` valuations
/// would exceed the caller-provided bound.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TooManyValuations {
    /// Number of event variables requested.
    pub num_events: usize,
    /// The caller's bound on the number of event variables.
    pub max_events: usize,
}

impl std::fmt::Display for TooManyValuations {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "enumerating 2^{} valuations exceeds the configured bound of 2^{}",
            self.num_events, self.max_events
        )
    }
}

impl std::error::Error for TooManyValuations {}

/// Iterator over all `2^n` valuations of `n` events, in lexicographic
/// (binary counter) order.
#[derive(Debug)]
pub struct AllValuations {
    next: Option<Valuation>,
}

impl Iterator for AllValuations {
    type Item = Valuation;

    fn next(&mut self) -> Option<Valuation> {
        let current = self.next.clone()?;
        // Binary increment; stop after the all-true valuation.
        let mut succ = current.clone();
        let mut carried = true;
        for i in 0..succ.len() {
            let e = EventId::from_index(i);
            if succ.get(e) {
                succ.set(e, false);
            } else {
                succ.set(e, true);
                carried = false;
                break;
            }
        }
        self.next = if carried { None } else { Some(succ) };
        Some(current)
    }
}

/// Enumerates all valuations over `num_events` events, refusing to start if
/// `num_events > max_events` (exponential-work guard).
pub fn all_valuations(
    num_events: usize,
    max_events: usize,
) -> Result<AllValuations, TooManyValuations> {
    if num_events > max_events {
        return Err(TooManyValuations {
            num_events,
            max_events,
        });
    }
    Ok(AllValuations {
        next: Some(Valuation::empty(num_events)),
    })
}

/// Default bound on the number of event variables for exhaustive
/// enumerations (2^24 ≈ 16M valuations).
pub const DEFAULT_MAX_EXHAUSTIVE_EVENTS: usize = 24;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip_across_word_boundary() {
        let mut v = Valuation::empty(130);
        for i in [0usize, 1, 63, 64, 65, 127, 128, 129] {
            let e = EventId::from_index(i);
            assert!(!v.get(e));
            v.set(e, true);
            assert!(v.get(e));
        }
        assert_eq!(v.count_true(), 8);
        v.set(EventId::from_index(64), false);
        assert_eq!(v.count_true(), 7);
    }

    #[test]
    fn union_with_merges_disjoint_assignments() {
        let mut a = Valuation::from_true_events(130, [EventId::from_index(0)]);
        let b =
            Valuation::from_true_events(130, [EventId::from_index(64), EventId::from_index(129)]);
        a.union_with(&b);
        assert_eq!(a.count_true(), 3);
        assert!(a.get(EventId::from_index(0)));
        assert!(a.get(EventId::from_index(64)));
        assert!(a.get(EventId::from_index(129)));
    }

    #[test]
    #[should_panic(expected = "different event counts")]
    fn union_with_rejects_mismatched_lengths() {
        let mut a = Valuation::empty(3);
        a.union_with(&Valuation::empty(4));
    }

    #[test]
    fn full_and_empty() {
        let v = Valuation::full(10);
        assert_eq!(v.count_true(), 10);
        let e = Valuation::empty(10);
        assert_eq!(e.count_true(), 0);
    }

    #[test]
    fn probability_of_valuation_matches_figure2() {
        // Figure 1: π(w1)=0.8, π(w2)=0.7.
        // V={w2}: (1−0.8)·0.7 = 0.14;  V={w1,w2}: 0.8·0.7 = 0.56.
        // (These two valuations both yield the Figure 2 world A→C→D with
        // total probability 0.70.)
        let mut t = EventTable::new();
        let w1 = t.insert("w1", 0.8);
        let w2 = t.insert("w2", 0.7);
        let v1 = Valuation::from_true_events(2, [w2]);
        let v2 = Valuation::from_true_events(2, [w1, w2]);
        assert!((v1.probability(&t) - 0.14).abs() < 1e-12);
        assert!((v2.probability(&t) - 0.56).abs() < 1e-12);
    }

    #[test]
    fn partial_valuation_probability_marginalizes_uncovered_events() {
        // Table with three events, valuation covering only the first two:
        // the third event is marginalized (factor 1).
        let mut t = EventTable::new();
        let w1 = t.insert("w1", 0.8);
        let w2 = t.insert("w2", 0.7);
        let w3 = t.insert("w3", 0.5);
        let partial = Valuation::from_true_events(2, [w1]);
        assert!((partial.probability(&t) - 0.8 * 0.3).abs() < 1e-12);
        // probability_over an explicit subset, from a full-length valuation.
        let full = Valuation::from_true_events(3, [w1, w3]);
        assert!((full.probability_over(&t, [w1, w2]) - 0.8 * 0.3).abs() < 1e-12);
        assert!((full.probability_over(&t, [w3]) - 0.5).abs() < 1e-12);
        assert_eq!(full.probability_over(&t, []), 1.0);
    }

    #[test]
    #[should_panic(expected = "declares only")]
    fn probability_rejects_valuations_longer_than_the_table() {
        let mut t = EventTable::new();
        t.insert("w1", 0.5);
        let v = Valuation::empty(2);
        let _ = v.probability(&t);
    }

    #[test]
    fn all_valuations_enumerates_exactly_2_pow_n() {
        let vals: Vec<_> = all_valuations(4, 10).unwrap().collect();
        assert_eq!(vals.len(), 16);
        // All distinct.
        let mut sorted = vals.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 16);
    }

    #[test]
    fn all_valuations_zero_events_is_single_empty_world() {
        let vals: Vec<_> = all_valuations(0, 10).unwrap().collect();
        assert_eq!(vals.len(), 1);
        assert_eq!(vals[0].len(), 0);
    }

    #[test]
    fn valuation_probabilities_sum_to_one() {
        let mut t = EventTable::new();
        t.insert("a", 0.3);
        t.insert("b", 0.9);
        t.insert("c", 0.5);
        let total: f64 = all_valuations(3, 10)
            .unwrap()
            .map(|v| v.probability(&t))
            .sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn enumeration_guard_refuses_large_event_sets() {
        let err = all_valuations(30, 24).unwrap_err();
        assert_eq!(err.num_events, 30);
        assert!(err.to_string().contains("2^30"));
    }

    #[test]
    fn true_events_iterator() {
        let mut v = Valuation::empty(5);
        v.set(EventId::from_index(1), true);
        v.set(EventId::from_index(3), true);
        let trues: Vec<usize> = v
            .true_events()
            .map(super::super::event::EventId::index)
            .collect();
        assert_eq!(trues, vec![1, 3]);
    }
}
