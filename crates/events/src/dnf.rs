//! Propositional formulas in disjunctive normal form and count-equivalence.
//!
//! Definition 10 of the paper: two DNF formulas `ψ`, `ψ'` are
//! *count-equivalent* (`ψ ≡⁺ ψ'`) if every valuation satisfies the same
//! number of disjuncts in both. Count-equivalence is strictly stronger than
//! logical equivalence — `A ∨ (A ∧ B)` is equivalent to `A` but not
//! count-equivalent — and is exactly the notion needed to compare the
//! multiset of children conditions of two prob-trees (Lemma 2).
//!
//! This module provides the DNF data type plus the **naive exponential**
//! decision procedures used as ground-truth baselines; the polynomial
//! identity-testing route (Lemma 1, Theorem 2) lives in `pxml-poly`.

use std::collections::BTreeMap;
use std::fmt;

use crate::condition::{Condition, Literal};
use crate::event::{EventId, EventTable};
use crate::semiring::{Probability, Semiring};
use crate::valuation::{all_valuations, TooManyValuations, Valuation};

/// A propositional formula in disjunctive normal form: a disjunction of
/// conjunctive [`Condition`]s. The empty DNF is `false`.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Dnf {
    disjuncts: Vec<Condition>,
}

impl Dnf {
    /// The empty disjunction (`false`).
    pub fn none() -> Self {
        Dnf::default()
    }

    /// A DNF with a single disjunct.
    pub fn of(condition: Condition) -> Self {
        Dnf {
            disjuncts: vec![condition],
        }
    }

    /// Builds a DNF from its disjuncts.
    pub fn from_disjuncts<I: IntoIterator<Item = Condition>>(disjuncts: I) -> Self {
        Dnf {
            disjuncts: disjuncts.into_iter().collect(),
        }
    }

    /// The disjuncts.
    pub fn disjuncts(&self) -> &[Condition] {
        &self.disjuncts
    }

    /// Number of disjuncts.
    pub fn len(&self) -> usize {
        self.disjuncts.len()
    }

    /// `true` for the empty disjunction.
    pub fn is_empty(&self) -> bool {
        self.disjuncts.is_empty()
    }

    /// Adds a disjunct.
    pub fn push(&mut self, condition: Condition) {
        self.disjuncts.push(condition);
    }

    /// Total number of literals across all disjuncts (the `Nl` size measure
    /// used in Theorem 2's error analysis).
    pub fn literal_count(&self) -> usize {
        self.disjuncts.iter().map(Condition::len).sum()
    }

    /// The event variables mentioned anywhere in the formula, deduplicated
    /// and sorted.
    pub fn events(&self) -> Vec<EventId> {
        let mut events: Vec<EventId> = self
            .disjuncts
            .iter()
            .flat_map(super::condition::Condition::events)
            .collect();
        events.sort_unstable();
        events.dedup();
        events
    }

    /// The *normalization* used by Definition 11: removes disjuncts with
    /// incompatible atomic conditions (their characteristic-polynomial
    /// contribution is 0); duplicate literals inside a disjunct are already
    /// removed by [`Condition`]'s representation.
    pub fn normalized(&self) -> Dnf {
        Dnf {
            disjuncts: self
                .disjuncts
                .iter()
                .filter(|c| c.is_consistent())
                .cloned()
                .collect(),
        }
    }

    /// Number of disjuncts satisfied by `valuation`.
    pub fn count_satisfied(&self, valuation: &Valuation) -> usize {
        self.disjuncts.iter().filter(|c| c.eval(valuation)).count()
    }

    /// Truth value under `valuation` (at least one disjunct satisfied).
    pub fn eval(&self, valuation: &Valuation) -> bool {
        self.disjuncts.iter().any(|c| c.eval(valuation))
    }

    /// Naive (exponential-time) decision of count-equivalence
    /// (Definition 10), by enumerating all valuations over the events of
    /// either formula. Ground truth for the Schwartz–Zippel test.
    pub fn count_equivalent_naive(
        &self,
        other: &Dnf,
        num_events: usize,
        max_events: usize,
    ) -> Result<bool, TooManyValuations> {
        for v in all_valuations(num_events, max_events)? {
            if self.count_satisfied(&v) != other.count_satisfied(&v) {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Naive (exponential-time) decision of plain logical equivalence.
    /// Under the Section 5 *set semantics* this —not count-equivalence— is
    /// the relevant notion (and makes structural equivalence
    /// co-NP-complete).
    pub fn equivalent_naive(
        &self,
        other: &Dnf,
        num_events: usize,
        max_events: usize,
    ) -> Result<bool, TooManyValuations> {
        for v in all_valuations(num_events, max_events)? {
            if self.eval(&v) != other.eval(&v) {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Probability that the formula is true under the independent
    /// distribution of `events`, computed by exhaustive enumeration.
    /// Exponential; used in tests and in the arbitrary-formula variant
    /// baselines.
    pub fn probability_naive(
        &self,
        events: &EventTable,
        max_events: usize,
    ) -> Result<f64, TooManyValuations> {
        self.eval_in(&Probability, events, max_events)
    }

    /// Semiring-generic value of the formula: the `add`-fold, over all
    /// satisfying valuations in binary-counter order, of each valuation's
    /// [`Valuation::weight_in`]. The valuations are mutually exclusive, so
    /// this is the disjoint sum every semiring's laws cover. Exponential;
    /// under [`Probability`] it is exactly [`Dnf::probability_naive`]
    /// (bit-identical), and under [`crate::semiring::Counting`] it is the
    /// number of models over the table's full event universe.
    ///
    /// The sweep stops as soon as the accumulator becomes
    /// [`Semiring::is_absorbing`]: under
    /// [`Possibility`](crate::semiring::Possibility) the first
    /// satisfying valuation settles the answer, turning the `2^n`
    /// enumeration into a search for one witness.
    pub fn eval_in<S: Semiring>(
        &self,
        semiring: &S,
        events: &EventTable,
        max_events: usize,
    ) -> Result<S::Value, TooManyValuations> {
        let mut total = semiring.zero();
        for v in all_valuations(events.len(), max_events)? {
            if self.eval(&v) {
                total = semiring.add(total, v.weight_in(semiring, events));
                if semiring.is_absorbing(&total) {
                    break;
                }
            }
        }
        Ok(total)
    }

    /// `true` if every pair of disjuncts contains a complementary literal
    /// pair, i.e. the disjuncts are syntactically mutually exclusive: no
    /// valuation satisfies two of them. For such a DNF,
    /// [`Dnf::count_satisfied`] is 0/1-valued, so count-equivalence and
    /// logical equivalence coincide.
    pub fn pairwise_disjoint(&self) -> bool {
        for (i, a) in self.disjuncts.iter().enumerate() {
            if !a.is_consistent() {
                continue; // never satisfied: disjoint with everything
            }
            for b in &self.disjuncts[i + 1..] {
                if b.is_consistent() && !a.is_disjoint_with(b) {
                    return false;
                }
            }
        }
        true
    }

    /// Attempts to re-cover a **pairwise-disjoint** DNF by a strictly
    /// smaller pairwise-disjoint DNF of the same Boolean function, via a
    /// Shannon expansion that at each node branches on the variable the
    /// remaining disjuncts use most one-sidedly (single-polarity first,
    /// then mention count, then smallest id);
    /// a literal shared one-sidedly by many disjuncts — e.g. the fresh
    /// confidence event of a probabilistic deletion — is then split off
    /// once instead of being repeated in every disjunct.
    ///
    /// Returns `None` when the input is not pairwise disjoint, mentions
    /// more than `max_support` events, or no strictly smaller cover (fewer
    /// disjuncts, or equally many with fewer literals) was found. The
    /// returned cover is pairwise disjoint and *count-equivalent* to the
    /// input ([`Dnf::count_equivalent_naive`] is the ground truth the unit
    /// tests check against), so it can substitute the input wherever the
    /// multiset of satisfied disjuncts matters — in particular for the
    /// sibling survivor copies produced by prob-tree deletions.
    pub fn minimized_disjoint_cover(&self, max_support: usize) -> Option<Dnf> {
        if self.disjuncts.len() < 2 || !self.pairwise_disjoint() {
            return None;
        }
        if self.events().len() > max_support {
            return None;
        }
        // Inconsistent disjuncts are never satisfied; dropping them upfront
        // preserves the satisfied-disjunct count everywhere.
        let base: Vec<Condition> = self
            .disjuncts
            .iter()
            .filter(|c| c.is_consistent())
            .cloned()
            .collect();
        let mut cover: Vec<Condition> = Vec::new();
        // A cover larger than the input is not an improvement; `shannon`
        // aborts as soon as it would exceed this budget.
        let budget = self.disjuncts.len();
        if !shannon(base, Condition::always(), &mut cover, budget) {
            return None;
        }
        let old = (self.len(), self.literal_count());
        let new = (cover.len(), cover.iter().map(Condition::len).sum::<usize>());
        if new < old {
            Some(Dnf::from_disjuncts(cover))
        } else {
            None
        }
    }

    /// Renders the DNF using the table's event names; the empty DNF renders
    /// as `⊥`.
    pub fn display<'a>(&'a self, events: &'a EventTable) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Dnf, &'a EventTable);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if self.0.disjuncts.is_empty() {
                    return write!(f, "⊥");
                }
                for (i, d) in self.0.disjuncts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∨ ")?;
                    }
                    write!(f, "({})", d.display(self.1))?;
                }
                Ok(())
            }
        }
        D(self, events)
    }
}

/// One node of the Shannon expansion. `disjuncts` is a pairwise-disjoint
/// cover of the current cofactor; `prefix` the conjunction of branching
/// literals taken so far. Emits one disjunct per path whose cofactor is a
/// tautology. Returns `false` when the cover under construction would
/// exceed `budget` disjuncts (no improvement possible).
fn shannon(
    disjuncts: Vec<Condition>,
    prefix: Condition,
    out: &mut Vec<Condition>,
    budget: usize,
) -> bool {
    if disjuncts.is_empty() {
        return true; // the cofactor is `false`: nothing to cover
    }
    if disjoint_tautology(&disjuncts) {
        if out.len() == budget {
            return false;
        }
        out.push(prefix);
        return true;
    }
    let event = pick_branch_event(&disjuncts);
    for value in [false, true] {
        let sub: Vec<Condition> = disjuncts
            .iter()
            .filter_map(|c| c.assign(event, value))
            .collect();
        let literal = if value {
            Literal::pos(event)
        } else {
            Literal::neg(event)
        };
        if !shannon(sub, prefix.and_literal(literal), out, budget) {
            return false;
        }
    }
    true
}

/// The branching heuristic of the Shannon expansion: prefer events every
/// remaining disjunct uses with a **single polarity** (assigning against
/// that polarity kills every mentioning disjunct at once, assigning with
/// it strictly shrinks them — the "peeling" shape of a negation chain),
/// then higher mention counts, then smaller ids (determinism).
fn pick_branch_event(disjuncts: &[Condition]) -> EventId {
    let mut counts: BTreeMap<EventId, (usize, usize)> = BTreeMap::new();
    for condition in disjuncts {
        for literal in condition.literals() {
            let entry = counts.entry(literal.event).or_insert((0, 0));
            if literal.positive {
                entry.0 += 1;
            } else {
                entry.1 += 1;
            }
        }
    }
    let mut best: Option<(bool, usize, EventId)> = None;
    for (&event, &(pos, neg)) in &counts {
        let single = pos == 0 || neg == 0;
        let key = (single, pos + neg, event);
        // Strict comparison on (single, frequency) with the BTreeMap's
        // ascending id order breaking ties toward smaller ids.
        let better = match best {
            None => true,
            Some((s, f, _)) => (single, pos + neg) > (s, f),
        };
        if better {
            best = Some(key);
        }
    }
    best.expect("non-empty, non-tautological disjuncts mention an event")
        .2
}

/// Exact tautology test for a pairwise-disjoint set of consistent
/// conjunctions: over the `k` mentioned events, disjoint disjuncts cover
/// `Σ_i 2^{k − len_i}` of the `2^k` valuations without double counting, so
/// the formula is a tautology iff that sum reaches `2^k`. (Returning
/// `false` for `k ≥ 128` only makes the expansion branch further; it never
/// produces a wrong cover.)
fn disjoint_tautology(disjuncts: &[Condition]) -> bool {
    if disjuncts.iter().any(Condition::is_empty) {
        // An empty conjunction is `true`; disjointness forces it to be the
        // only disjunct.
        return true;
    }
    let mut events: Vec<EventId> = disjuncts
        .iter()
        .flat_map(super::condition::Condition::events)
        .collect();
    events.sort_unstable();
    events.dedup();
    let k = events.len();
    if k >= 128 {
        return false;
    }
    let covered: u128 = disjuncts.iter().map(|c| 1u128 << (k - c.len())).sum();
    covered == 1u128 << k
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::Literal;

    fn setup() -> (EventTable, EventId, EventId, EventId) {
        let mut t = EventTable::new();
        let a = t.insert("A", 0.5);
        let b = t.insert("B", 0.5);
        let c = t.insert("C", 0.5);
        (t, a, b, c)
    }

    #[test]
    fn papers_count_equivalence_counterexample() {
        // A ∨ (A ∧ B) is equivalent to A but NOT count-equivalent.
        let (t, a, b, _) = setup();
        let lhs = Dnf::from_disjuncts([
            Condition::of(Literal::pos(a)),
            Condition::from_literals([Literal::pos(a), Literal::pos(b)]),
        ]);
        let rhs = Dnf::of(Condition::of(Literal::pos(a)));
        assert!(lhs.equivalent_naive(&rhs, t.len(), 10).unwrap());
        assert!(!lhs.count_equivalent_naive(&rhs, t.len(), 10).unwrap());
    }

    #[test]
    fn count_equivalence_is_preserved_by_disjunct_reordering() {
        let (t, a, b, _) = setup();
        let d1 = Condition::of(Literal::pos(a));
        let d2 = Condition::of(Literal::neg(b));
        let x = Dnf::from_disjuncts([d1.clone(), d2.clone()]);
        let y = Dnf::from_disjuncts([d2, d1]);
        assert!(x.count_equivalent_naive(&y, t.len(), 10).unwrap());
    }

    #[test]
    fn normalization_drops_inconsistent_disjuncts() {
        let (_, a, _, _) = setup();
        let inconsistent = Condition::from_literals([Literal::pos(a), Literal::neg(a)]);
        let dnf = Dnf::from_disjuncts([inconsistent, Condition::of(Literal::pos(a))]);
        assert_eq!(dnf.len(), 2);
        assert_eq!(dnf.normalized().len(), 1);
    }

    #[test]
    fn count_satisfied_counts_multiplicities() {
        let (t, a, b, _) = setup();
        let dnf = Dnf::from_disjuncts([
            Condition::of(Literal::pos(a)),
            Condition::of(Literal::pos(a)),
            Condition::of(Literal::pos(b)),
        ]);
        let v = Valuation::from_true_events(t.len(), [a]);
        assert_eq!(dnf.count_satisfied(&v), 2);
        assert!(dnf.eval(&v));
        let v0 = Valuation::empty(t.len());
        assert_eq!(dnf.count_satisfied(&v0), 0);
        assert!(!dnf.eval(&v0));
    }

    #[test]
    fn empty_dnf_is_false_everywhere() {
        let (t, _, _, _) = setup();
        let dnf = Dnf::none();
        for v in all_valuations(t.len(), 10).unwrap() {
            assert!(!dnf.eval(&v));
        }
        assert_eq!(dnf.probability_naive(&t, 10).unwrap(), 0.0);
    }

    #[test]
    fn probability_naive_matches_hand_computation() {
        // P(A ∨ B) with independent P(A)=P(B)=0.5 is 0.75.
        let (t, a, b, _) = setup();
        let dnf = Dnf::from_disjuncts([
            Condition::of(Literal::pos(a)),
            Condition::of(Literal::pos(b)),
        ]);
        let p = dnf.probability_naive(&t, 10).unwrap();
        assert!((p - 0.75).abs() < 1e-12);
    }

    #[test]
    fn events_are_collected_and_deduplicated() {
        let (_, a, b, c) = setup();
        let dnf = Dnf::from_disjuncts([
            Condition::from_literals([Literal::pos(a), Literal::neg(b)]),
            Condition::from_literals([Literal::pos(b), Literal::pos(c)]),
        ]);
        assert_eq!(dnf.events(), vec![a, b, c]);
        assert_eq!(dnf.literal_count(), 4);
    }

    #[test]
    fn display_renders_disjunction() {
        let (t, a, b, _) = setup();
        let dnf = Dnf::from_disjuncts([
            Condition::of(Literal::pos(a)),
            Condition::of(Literal::neg(b)),
        ]);
        assert_eq!(format!("{}", dnf.display(&t)), "(A) ∨ (¬B)");
        assert_eq!(format!("{}", Dnf::none().display(&t)), "⊥");
    }

    #[test]
    fn pairwise_disjoint_detection() {
        let (_, a, b, _) = setup();
        let disjoint = Dnf::from_disjuncts([
            Condition::of(Literal::neg(a)),
            Condition::from_literals([Literal::pos(a), Literal::neg(b)]),
        ]);
        assert!(disjoint.pairwise_disjoint());
        let overlapping = Dnf::from_disjuncts([
            Condition::of(Literal::neg(a)),
            Condition::of(Literal::neg(b)),
        ]);
        assert!(!overlapping.pairwise_disjoint());
        assert!(Dnf::none().pairwise_disjoint());
    }

    #[test]
    fn complementary_pair_merges_into_common_prefix() {
        // (A ∧ B) ∨ (A ∧ ¬B) ≡ A — the smallest mergeable pair.
        let (t, a, b, _) = setup();
        let dnf = Dnf::from_disjuncts([
            Condition::from_literals([Literal::pos(a), Literal::pos(b)]),
            Condition::from_literals([Literal::pos(a), Literal::neg(b)]),
        ]);
        let cover = dnf.minimized_disjoint_cover(16).unwrap();
        assert_eq!(cover.len(), 1);
        assert_eq!(cover.disjuncts()[0], Condition::of(Literal::pos(a)));
        assert!(dnf.count_equivalent_naive(&cover, t.len(), 16).unwrap());
    }

    #[test]
    fn shared_literal_is_factored_out_of_a_chain_product() {
        // The 3^2-disjunct survivor expansion of two deletions sharing the
        // confidence event w: ⋀_j ¬(a_j ∧ b_j ∧ w). The frequency-first
        // Shannon cover is {¬w} ∪ {w ∧ (chain product)} — 1 + 2^2 = 5
        // disjuncts instead of 9.
        let mut t = EventTable::new();
        let a1 = t.insert("a1", 0.5);
        let b1 = t.insert("b1", 0.5);
        let a2 = t.insert("a2", 0.5);
        let b2 = t.insert("b2", 0.5);
        let w = t.insert("w", 0.5);
        let chain = |a: EventId, b: EventId| {
            vec![
                Condition::of(Literal::neg(a)),
                Condition::from_literals([Literal::pos(a), Literal::neg(b)]),
                Condition::from_literals([Literal::pos(a), Literal::pos(b), Literal::neg(w)]),
            ]
        };
        let mut disjuncts = Vec::new();
        for x in chain(a1, b1) {
            for y in chain(a2, b2) {
                let combined = x.and(&y);
                if combined.is_consistent() {
                    disjuncts.push(combined);
                }
            }
        }
        let dnf = Dnf::from_disjuncts(disjuncts);
        assert_eq!(dnf.len(), 9);
        assert!(dnf.pairwise_disjoint());
        let cover = dnf.minimized_disjoint_cover(16).unwrap();
        assert_eq!(cover.len(), 5);
        assert!(cover.pairwise_disjoint());
        assert!(cover.literal_count() < dnf.literal_count());
        assert!(dnf.count_equivalent_naive(&cover, t.len(), 16).unwrap());
    }

    #[test]
    fn already_minimal_covers_are_left_alone() {
        // The Theorem 3 chain expansion at confidence 1 is already a
        // minimal disjoint cover: ¬a | a∧¬b.
        let (_, a, b, _) = setup();
        let dnf = Dnf::from_disjuncts([
            Condition::of(Literal::neg(a)),
            Condition::from_literals([Literal::pos(a), Literal::neg(b)]),
        ]);
        assert!(dnf.minimized_disjoint_cover(16).is_none());
        // Non-disjoint inputs are refused outright.
        let overlapping = Dnf::from_disjuncts([
            Condition::of(Literal::neg(a)),
            Condition::of(Literal::neg(b)),
        ]);
        assert!(overlapping.minimized_disjoint_cover(16).is_none());
        // As are supports beyond the cap.
        let wide = Dnf::from_disjuncts([
            Condition::from_literals([Literal::pos(a), Literal::pos(b)]),
            Condition::from_literals([Literal::pos(a), Literal::neg(b)]),
        ]);
        assert!(wide.minimized_disjoint_cover(1).is_none());
    }

    #[test]
    fn inconsistent_disjuncts_count_as_removable() {
        let (t, a, b, _) = setup();
        let dnf = Dnf::from_disjuncts([
            Condition::of(Literal::pos(a)),
            Condition::from_literals([Literal::pos(b), Literal::neg(b)]),
        ]);
        // The inconsistent disjunct is dropped, leaving a single-disjunct
        // cover — strictly smaller.
        let cover = dnf.minimized_disjoint_cover(16).unwrap();
        assert_eq!(cover.len(), 1);
        assert!(dnf.count_equivalent_naive(&cover, t.len(), 16).unwrap());
    }

    #[test]
    fn guard_propagates_from_valuation_enumeration() {
        let (_, a, _, _) = setup();
        let dnf = Dnf::of(Condition::of(Literal::pos(a)));
        assert!(dnf.count_equivalent_naive(&dnf, 40, 24).is_err());
    }

    /// Delegating wrapper that counts `add` applications, so tests can
    /// observe how much of the exponential sweep actually ran.
    struct CountingOps<S> {
        inner: S,
        adds: std::cell::Cell<usize>,
    }

    impl<S> CountingOps<S> {
        fn new(inner: S) -> Self {
            CountingOps {
                inner,
                adds: std::cell::Cell::new(0),
            }
        }
    }

    impl<S: Semiring> Semiring for CountingOps<S> {
        type Value = S::Value;

        fn zero(&self) -> S::Value {
            self.inner.zero()
        }

        fn one(&self) -> S::Value {
            self.inner.one()
        }

        fn add(&self, a: S::Value, b: S::Value) -> S::Value {
            self.adds.set(self.adds.get() + 1);
            self.inner.add(a, b)
        }

        fn mul(&self, a: S::Value, b: S::Value) -> S::Value {
            self.inner.mul(a, b)
        }

        fn literal(&self, literal: Literal, events: &EventTable) -> S::Value {
            self.inner.literal(literal, events)
        }

        fn is_zero(&self, value: &S::Value) -> bool {
            self.inner.is_zero(value)
        }

        fn constrains_unmentioned(&self) -> bool {
            self.inner.constrains_unmentioned()
        }

        fn unmentioned(&self, event: EventId, events: &EventTable) -> S::Value {
            self.inner.unmentioned(event, events)
        }

        fn is_absorbing(&self, value: &S::Value) -> bool {
            self.inner.is_absorbing(value)
        }
    }

    #[test]
    fn absorbing_accumulators_short_circuit_the_sweep() {
        // 10 events, single-literal formula: 2^9 = 512 satisfying
        // valuations. Probability has no absorbing value and folds all of
        // them; Possibility stops at the first witness.
        let mut t = EventTable::new();
        let a = t.insert("a", 0.5);
        for i in 1..10 {
            t.insert(format!("pad{i}"), 0.5);
        }
        let dnf = Dnf::of(Condition::of(Literal::pos(a)));

        let exhaustive = CountingOps::new(crate::semiring::Probability);
        let p = dnf.eval_in(&exhaustive, &t, 16).unwrap();
        assert!((p - 0.5).abs() < 1e-12);
        assert_eq!(exhaustive.adds.get(), 512);

        let witness = CountingOps::new(crate::semiring::Possibility);
        assert!(dnf.eval_in(&witness, &t, 16).unwrap());
        assert_eq!(witness.adds.get(), 1, "stops at the first witness");

        // Full valuations always realize every literal, so a top-1 proof
        // value never reaches the absorbing empty proof here — the sweep
        // must run to completion and still rank correctly (soundness of
        // the hook: no premature exit on non-absorbing values).
        let top1 = CountingOps::new(crate::semiring::TopKProofs::new(1));
        let v1 = dnf.eval_in(&top1, &t, 16).unwrap();
        assert_eq!(top1.adds.get(), 512);
        assert_eq!(v1.len(), 1);
        assert_eq!(v1[0].len(), 10, "best proof realizes all ten events");
    }

    #[test]
    fn unsatisfiable_formulas_never_absorb() {
        let mut t = EventTable::new();
        let a = t.insert("a", 0.5);
        let dnf = Dnf::of(Condition::from_literals([Literal::pos(a), Literal::neg(a)]));
        let s = CountingOps::new(crate::semiring::Possibility);
        assert!(!dnf.eval_in(&s, &t, 16).unwrap());
        assert_eq!(s.adds.get(), 0);
    }
}
