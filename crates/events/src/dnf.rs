//! Propositional formulas in disjunctive normal form and count-equivalence.
//!
//! Definition 10 of the paper: two DNF formulas `ψ`, `ψ'` are
//! *count-equivalent* (`ψ ≡⁺ ψ'`) if every valuation satisfies the same
//! number of disjuncts in both. Count-equivalence is strictly stronger than
//! logical equivalence — `A ∨ (A ∧ B)` is equivalent to `A` but not
//! count-equivalent — and is exactly the notion needed to compare the
//! multiset of children conditions of two prob-trees (Lemma 2).
//!
//! This module provides the DNF data type plus the **naive exponential**
//! decision procedures used as ground-truth baselines; the polynomial
//! identity-testing route (Lemma 1, Theorem 2) lives in `pxml-poly`.

use std::fmt;

use crate::condition::Condition;
use crate::event::{EventId, EventTable};
use crate::valuation::{all_valuations, TooManyValuations, Valuation};

/// A propositional formula in disjunctive normal form: a disjunction of
/// conjunctive [`Condition`]s. The empty DNF is `false`.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Dnf {
    disjuncts: Vec<Condition>,
}

impl Dnf {
    /// The empty disjunction (`false`).
    pub fn none() -> Self {
        Dnf::default()
    }

    /// A DNF with a single disjunct.
    pub fn of(condition: Condition) -> Self {
        Dnf {
            disjuncts: vec![condition],
        }
    }

    /// Builds a DNF from its disjuncts.
    pub fn from_disjuncts<I: IntoIterator<Item = Condition>>(disjuncts: I) -> Self {
        Dnf {
            disjuncts: disjuncts.into_iter().collect(),
        }
    }

    /// The disjuncts.
    pub fn disjuncts(&self) -> &[Condition] {
        &self.disjuncts
    }

    /// Number of disjuncts.
    pub fn len(&self) -> usize {
        self.disjuncts.len()
    }

    /// `true` for the empty disjunction.
    pub fn is_empty(&self) -> bool {
        self.disjuncts.is_empty()
    }

    /// Adds a disjunct.
    pub fn push(&mut self, condition: Condition) {
        self.disjuncts.push(condition);
    }

    /// Total number of literals across all disjuncts (the `Nl` size measure
    /// used in Theorem 2's error analysis).
    pub fn literal_count(&self) -> usize {
        self.disjuncts.iter().map(Condition::len).sum()
    }

    /// The event variables mentioned anywhere in the formula, deduplicated
    /// and sorted.
    pub fn events(&self) -> Vec<EventId> {
        let mut events: Vec<EventId> = self.disjuncts.iter().flat_map(|c| c.events()).collect();
        events.sort_unstable();
        events.dedup();
        events
    }

    /// The *normalization* used by Definition 11: removes disjuncts with
    /// incompatible atomic conditions (their characteristic-polynomial
    /// contribution is 0); duplicate literals inside a disjunct are already
    /// removed by [`Condition`]'s representation.
    pub fn normalized(&self) -> Dnf {
        Dnf {
            disjuncts: self
                .disjuncts
                .iter()
                .filter(|c| c.is_consistent())
                .cloned()
                .collect(),
        }
    }

    /// Number of disjuncts satisfied by `valuation`.
    pub fn count_satisfied(&self, valuation: &Valuation) -> usize {
        self.disjuncts.iter().filter(|c| c.eval(valuation)).count()
    }

    /// Truth value under `valuation` (at least one disjunct satisfied).
    pub fn eval(&self, valuation: &Valuation) -> bool {
        self.disjuncts.iter().any(|c| c.eval(valuation))
    }

    /// Naive (exponential-time) decision of count-equivalence
    /// (Definition 10), by enumerating all valuations over the events of
    /// either formula. Ground truth for the Schwartz–Zippel test.
    pub fn count_equivalent_naive(
        &self,
        other: &Dnf,
        num_events: usize,
        max_events: usize,
    ) -> Result<bool, TooManyValuations> {
        for v in all_valuations(num_events, max_events)? {
            if self.count_satisfied(&v) != other.count_satisfied(&v) {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Naive (exponential-time) decision of plain logical equivalence.
    /// Under the Section 5 *set semantics* this —not count-equivalence— is
    /// the relevant notion (and makes structural equivalence
    /// co-NP-complete).
    pub fn equivalent_naive(
        &self,
        other: &Dnf,
        num_events: usize,
        max_events: usize,
    ) -> Result<bool, TooManyValuations> {
        for v in all_valuations(num_events, max_events)? {
            if self.eval(&v) != other.eval(&v) {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Probability that the formula is true under the independent
    /// distribution of `events`, computed by exhaustive enumeration.
    /// Exponential; used in tests and in the arbitrary-formula variant
    /// baselines.
    pub fn probability_naive(
        &self,
        events: &EventTable,
        max_events: usize,
    ) -> Result<f64, TooManyValuations> {
        let mut total = 0.0;
        for v in all_valuations(events.len(), max_events)? {
            if self.eval(&v) {
                total += v.probability(events);
            }
        }
        Ok(total)
    }

    /// Renders the DNF using the table's event names; the empty DNF renders
    /// as `⊥`.
    pub fn display<'a>(&'a self, events: &'a EventTable) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Dnf, &'a EventTable);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if self.0.disjuncts.is_empty() {
                    return write!(f, "⊥");
                }
                for (i, d) in self.0.disjuncts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∨ ")?;
                    }
                    write!(f, "({})", d.display(self.1))?;
                }
                Ok(())
            }
        }
        D(self, events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::Literal;

    fn setup() -> (EventTable, EventId, EventId, EventId) {
        let mut t = EventTable::new();
        let a = t.insert("A", 0.5);
        let b = t.insert("B", 0.5);
        let c = t.insert("C", 0.5);
        (t, a, b, c)
    }

    #[test]
    fn papers_count_equivalence_counterexample() {
        // A ∨ (A ∧ B) is equivalent to A but NOT count-equivalent.
        let (t, a, b, _) = setup();
        let lhs = Dnf::from_disjuncts([
            Condition::of(Literal::pos(a)),
            Condition::from_literals([Literal::pos(a), Literal::pos(b)]),
        ]);
        let rhs = Dnf::of(Condition::of(Literal::pos(a)));
        assert!(lhs.equivalent_naive(&rhs, t.len(), 10).unwrap());
        assert!(!lhs.count_equivalent_naive(&rhs, t.len(), 10).unwrap());
    }

    #[test]
    fn count_equivalence_is_preserved_by_disjunct_reordering() {
        let (t, a, b, _) = setup();
        let d1 = Condition::of(Literal::pos(a));
        let d2 = Condition::of(Literal::neg(b));
        let x = Dnf::from_disjuncts([d1.clone(), d2.clone()]);
        let y = Dnf::from_disjuncts([d2, d1]);
        assert!(x.count_equivalent_naive(&y, t.len(), 10).unwrap());
    }

    #[test]
    fn normalization_drops_inconsistent_disjuncts() {
        let (_, a, _, _) = setup();
        let inconsistent = Condition::from_literals([Literal::pos(a), Literal::neg(a)]);
        let dnf = Dnf::from_disjuncts([inconsistent, Condition::of(Literal::pos(a))]);
        assert_eq!(dnf.len(), 2);
        assert_eq!(dnf.normalized().len(), 1);
    }

    #[test]
    fn count_satisfied_counts_multiplicities() {
        let (t, a, b, _) = setup();
        let dnf = Dnf::from_disjuncts([
            Condition::of(Literal::pos(a)),
            Condition::of(Literal::pos(a)),
            Condition::of(Literal::pos(b)),
        ]);
        let v = Valuation::from_true_events(t.len(), [a]);
        assert_eq!(dnf.count_satisfied(&v), 2);
        assert!(dnf.eval(&v));
        let v0 = Valuation::empty(t.len());
        assert_eq!(dnf.count_satisfied(&v0), 0);
        assert!(!dnf.eval(&v0));
    }

    #[test]
    fn empty_dnf_is_false_everywhere() {
        let (t, _, _, _) = setup();
        let dnf = Dnf::none();
        for v in all_valuations(t.len(), 10).unwrap() {
            assert!(!dnf.eval(&v));
        }
        assert_eq!(dnf.probability_naive(&t, 10).unwrap(), 0.0);
    }

    #[test]
    fn probability_naive_matches_hand_computation() {
        // P(A ∨ B) with independent P(A)=P(B)=0.5 is 0.75.
        let (t, a, b, _) = setup();
        let dnf = Dnf::from_disjuncts([
            Condition::of(Literal::pos(a)),
            Condition::of(Literal::pos(b)),
        ]);
        let p = dnf.probability_naive(&t, 10).unwrap();
        assert!((p - 0.75).abs() < 1e-12);
    }

    #[test]
    fn events_are_collected_and_deduplicated() {
        let (_, a, b, c) = setup();
        let dnf = Dnf::from_disjuncts([
            Condition::from_literals([Literal::pos(a), Literal::neg(b)]),
            Condition::from_literals([Literal::pos(b), Literal::pos(c)]),
        ]);
        assert_eq!(dnf.events(), vec![a, b, c]);
        assert_eq!(dnf.literal_count(), 4);
    }

    #[test]
    fn display_renders_disjunction() {
        let (t, a, b, _) = setup();
        let dnf = Dnf::from_disjuncts([
            Condition::of(Literal::pos(a)),
            Condition::of(Literal::neg(b)),
        ]);
        assert_eq!(format!("{}", dnf.display(&t)), "(A) ∨ (¬B)");
        assert_eq!(format!("{}", Dnf::none().display(&t)), "⊥");
    }

    #[test]
    fn guard_propagates_from_valuation_enumeration() {
        let (_, a, _, _) = setup();
        let dnf = Dnf::of(Condition::of(Literal::pos(a)));
        assert!(dnf.count_equivalent_naive(&dnf, 40, 24).is_err());
    }
}
