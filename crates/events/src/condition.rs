//! Literals and conjunctive conditions.
//!
//! A *condition* over a set of event variables `W` is a (possibly empty)
//! set of atomic conditions of the form `w` or `¬w` (Section 2 of the
//! paper), interpreted as their conjunction. The empty condition is `true`.

use std::fmt;

use crate::event::{EventId, EventTable};
use crate::semiring::{Probability, Semiring};
use crate::valuation::Valuation;

/// An atomic condition: an event variable or its negation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Literal {
    /// The event variable.
    pub event: EventId,
    /// `true` for the atom `w`, `false` for `¬w`.
    pub positive: bool,
}

impl Literal {
    /// The positive literal `w`.
    pub fn pos(event: EventId) -> Self {
        Literal {
            event,
            positive: true,
        }
    }

    /// The negative literal `¬w`.
    pub fn neg(event: EventId) -> Self {
        Literal {
            event,
            positive: false,
        }
    }

    /// The literal with the opposite polarity.
    pub fn negated(self) -> Self {
        Literal {
            event: self.event,
            positive: !self.positive,
        }
    }

    /// Truth value of the literal under a valuation.
    pub fn eval(self, valuation: &Valuation) -> bool {
        valuation.get(self.event) == self.positive
    }

    /// Probability of the literal under the independent distribution `π`.
    pub fn prob(self, events: &EventTable) -> f64 {
        if self.positive {
            events.prob(self.event)
        } else {
            1.0 - events.prob(self.event)
        }
    }

    /// Renders the literal using the table's event names.
    pub fn display<'a>(&'a self, events: &'a EventTable) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Literal, &'a EventTable);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if !self.0.positive {
                    write!(f, "¬")?;
                }
                write!(f, "{}", self.1.name(self.0.event))
            }
        }
        D(self, events)
    }
}

/// A conjunction of literals (a *condition*). Kept sorted and deduplicated,
/// so equality of `Condition` values is syntactic equality of the
/// literal sets.
///
/// A condition may be *inconsistent* (contain both `w` and `¬w`); the
/// paper keeps such conditions representable (they evaluate to probability
/// zero and are pruned by cleaning).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Condition {
    literals: Vec<Literal>,
}

impl Condition {
    /// The empty (always true) condition.
    pub fn always() -> Self {
        Condition::default()
    }

    /// A condition consisting of a single literal.
    pub fn of(literal: Literal) -> Self {
        Condition {
            literals: vec![literal],
        }
    }

    /// Builds a condition from an iterator of literals (sorted,
    /// deduplicated).
    pub fn from_literals<I: IntoIterator<Item = Literal>>(literals: I) -> Self {
        let mut literals: Vec<Literal> = literals.into_iter().collect();
        literals.sort_unstable();
        literals.dedup();
        Condition { literals }
    }

    /// The literals of the condition, sorted.
    pub fn literals(&self) -> &[Literal] {
        &self.literals
    }

    /// Number of literals.
    pub fn len(&self) -> usize {
        self.literals.len()
    }

    /// `true` for the empty (always true) condition.
    pub fn is_empty(&self) -> bool {
        self.literals.is_empty()
    }

    /// Whether the condition mentions `event` (positively or negatively).
    pub fn mentions(&self, event: EventId) -> bool {
        self.literals.iter().any(|l| l.event == event)
    }

    /// All event variables mentioned.
    pub fn events(&self) -> impl Iterator<Item = EventId> + '_ {
        self.literals.iter().map(|l| l.event)
    }

    /// `true` if the condition is intrinsically consistent, i.e. does not
    /// contain both `w` and `¬w` for some event `w`.
    pub fn is_consistent(&self) -> bool {
        self.literals
            .windows(2)
            .all(|w| !(w[0].event == w[1].event && w[0].positive != w[1].positive))
    }

    /// Conjunction of two conditions.
    ///
    /// Both literal lists are already sorted and deduplicated (a class
    /// invariant), so this is a linear merge — no re-sort, which would make
    /// repeated unions (e.g. the per-answer condition union of
    /// `query_probtree`) quadratic.
    pub fn and(&self, other: &Condition) -> Condition {
        if self.is_empty() {
            return other.clone();
        }
        if other.is_empty() {
            return self.clone();
        }
        let (a, b) = (&self.literals, &other.literals);
        let mut literals = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => {
                    literals.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    literals.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    literals.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        literals.extend_from_slice(&a[i..]);
        literals.extend_from_slice(&b[j..]);
        Condition { literals }
    }

    /// Conjunction of many conditions at once: a single sorted merge-union
    /// over all their literals.
    ///
    /// Equivalent to folding [`Condition::and`] over the inputs, but the
    /// fold rebuilds its accumulator on every step — `Σ_i (L_1 + … + L_i)`
    /// literal copies, quadratic in the number of inputs — while this
    /// concatenates every literal list once and sorts the concatenation
    /// (`O(L log L)` for `L` total literals; the inputs are already sorted
    /// runs, which the pattern-defeating sort exploits). This is the union
    /// the per-answer `⋃_{n ∈ u} γ(n)` of Definition 8 needs.
    pub fn union_of<'a, I>(conditions: I) -> Condition
    where
        I: IntoIterator<Item = &'a Condition>,
    {
        let mut literals: Vec<Literal> = Vec::new();
        for condition in conditions {
            literals.extend_from_slice(&condition.literals);
        }
        literals.sort_unstable();
        literals.dedup();
        Condition { literals }
    }

    /// Adds a single literal, inserting it at its sorted position (linear in
    /// the condition size; no re-sort).
    pub fn and_literal(&self, literal: Literal) -> Condition {
        match self.literals.binary_search(&literal) {
            Ok(_) => self.clone(),
            Err(pos) => {
                let mut literals = Vec::with_capacity(self.literals.len() + 1);
                literals.extend_from_slice(&self.literals[..pos]);
                literals.push(literal);
                literals.extend_from_slice(&self.literals[pos..]);
                Condition { literals }
            }
        }
    }

    /// Set-difference of conditions: the literals of `self` that are not in
    /// `other`. Used by the update algorithms of Appendix A
    /// (`cond − (γ(µ(n)) ∪ cond_ancestors)`).
    pub fn minus(&self, other: &Condition) -> Condition {
        Condition {
            literals: self
                .literals
                .iter()
                .filter(|l| !other.literals.contains(l))
                .copied()
                .collect(),
        }
    }

    /// `true` if every literal of `self` appears in `other` (so `other`
    /// logically implies `self`, both being conjunctions).
    pub fn subset_of(&self, other: &Condition) -> bool {
        self.literals.iter().all(|l| other.literals.contains(l))
    }

    /// Whether the condition contains exactly this literal (same event and
    /// polarity).
    pub fn contains(&self, literal: Literal) -> bool {
        self.literals.binary_search(&literal).is_ok()
    }

    /// `true` if the two conjunctions are syntactically mutually exclusive:
    /// one contains a literal whose negation appears in the other, so no
    /// valuation satisfies both. Linear merge walk over the sorted literal
    /// lists.
    pub fn is_disjoint_with(&self, other: &Condition) -> bool {
        let (a, b) = (&self.literals, &other.literals);
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].event.cmp(&b[j].event) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    if a[i].positive != b[j].positive {
                        return true;
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        false
    }

    /// Cofactor: the condition restricted by the assignment `event := value`.
    /// Returns `None` if the assignment falsifies the condition (it contains
    /// the opposite literal), otherwise the condition with any literal on
    /// `event` removed (it is now satisfied).
    pub fn assign(&self, event: EventId, value: bool) -> Option<Condition> {
        if self
            .literals
            .iter()
            .any(|l| l.event == event && l.positive != value)
        {
            return None;
        }
        if !self.mentions(event) {
            return Some(self.clone());
        }
        Some(Condition {
            literals: self
                .literals
                .iter()
                .filter(|l| l.event != event)
                .copied()
                .collect(),
        })
    }

    /// Truth value under a valuation. The empty condition is true.
    pub fn eval(&self, valuation: &Valuation) -> bool {
        self.literals.iter().all(|l| l.eval(valuation))
    }

    /// The `eval` function of Definition 8, generalized to any
    /// commutative semiring: the semiring's `zero` if the condition is
    /// inconsistent, otherwise the `mul`-fold of the literal
    /// interpretations (in sorted literal order), times the
    /// [`Semiring::unmentioned`] factor of every unconstrained event when
    /// the instance asks for it (e.g. [`crate::semiring::Counting`]).
    ///
    /// Under [`Probability`] this monomorphizes to exactly the
    /// pre-semiring fold `literals.map(prob).product()` — same operations,
    /// same order, bit-identical results.
    pub fn eval_in<S: Semiring>(&self, semiring: &S, events: &EventTable) -> S::Value {
        if !self.is_consistent() {
            return semiring.zero();
        }
        let mut acc = semiring.one();
        for &literal in &self.literals {
            acc = semiring.mul(acc, semiring.literal(literal, events));
            if semiring.is_zero(&acc) {
                // `0` annihilates the rest of the fold (and the
                // unmentioned-event sweep: `mul(0, _) = 0` is a semiring
                // law), so the accumulator can no longer change.
                return acc;
            }
        }
        if semiring.constrains_unmentioned() {
            for event in events.iter() {
                if !self.mentions(event) {
                    acc = semiring.mul(acc, semiring.unmentioned(event, events));
                }
            }
        }
        acc
    }

    /// The `eval` function of Definition 8: `0` if the condition is
    /// inconsistent, otherwise the product of `π(w)` for positive literals
    /// and `1 − π(w)` for negative literals. Equivalent to
    /// [`Condition::eval_in`] under the [`Probability`] semiring (the
    /// specialized fast path).
    pub fn probability(&self, events: &EventTable) -> f64 {
        self.eval_in(&Probability, events)
    }

    /// Renders the condition using the table's event names; the empty
    /// condition renders as `⊤`.
    pub fn display<'a>(&'a self, events: &'a EventTable) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Condition, &'a EventTable);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if self.0.literals.is_empty() {
                    return write!(f, "⊤");
                }
                for (i, lit) in self.0.literals.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{}", lit.display(self.1))?;
                }
                Ok(())
            }
        }
        D(self, events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> (EventTable, EventId, EventId, EventId) {
        let mut t = EventTable::new();
        let w1 = t.insert("w1", 0.8);
        let w2 = t.insert("w2", 0.7);
        let w3 = t.insert("w3", 0.5);
        (t, w1, w2, w3)
    }

    #[test]
    fn literal_eval_and_prob() {
        let (t, w1, _, _) = table();
        let mut v = Valuation::empty(t.len());
        assert!(!Literal::pos(w1).eval(&v));
        assert!(Literal::neg(w1).eval(&v));
        v.set(w1, true);
        assert!(Literal::pos(w1).eval(&v));
        assert!((Literal::pos(w1).prob(&t) - 0.8).abs() < 1e-12);
        assert!((Literal::neg(w1).prob(&t) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn condition_dedups_and_sorts() {
        let (_, w1, w2, _) = table();
        let c = Condition::from_literals([Literal::pos(w2), Literal::pos(w1), Literal::pos(w2)]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.literals()[0].event, w1);
    }

    /// The pre-semiring probability fold, kept verbatim as the oracle the
    /// generic [`Condition::eval_in`] path is pinned against. This is the
    /// single surviving hand-rolled copy; the production folds in `dnf`
    /// and the worlds engine are wrappers over the generic fold.
    fn probability_oracle(c: &Condition, events: &EventTable) -> f64 {
        if !c.is_consistent() {
            return 0.0;
        }
        c.literals.iter().map(|l| l.prob(events)).product()
    }

    #[test]
    fn generic_probability_fold_is_bit_identical_to_the_oracle() {
        let (t, w1, w2, w3) = table();
        let universe = [
            Literal::pos(w1),
            Literal::neg(w1),
            Literal::pos(w2),
            Literal::neg(w2),
            Literal::pos(w3),
            Literal::neg(w3),
        ];
        for mask in 0..64usize {
            let c = Condition::from_literals(
                universe
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask >> i & 1 == 1)
                    .map(|(_, &l)| l),
            );
            assert_eq!(
                c.probability(&t).to_bits(),
                probability_oracle(&c, &t).to_bits(),
                "condition {:?}",
                c.literals()
            );
        }
    }

    #[test]
    fn figure1_condition_probability() {
        // Node B of Figure 1 carries w1 ∧ ¬w2 with π(w1)=0.8, π(w2)=0.7:
        // probability 0.8 · 0.3 = 0.24.
        let (t, w1, w2, _) = table();
        let c = Condition::from_literals([Literal::pos(w1), Literal::neg(w2)]);
        assert!((c.probability(&t) - 0.24).abs() < 1e-12);
    }

    #[test]
    fn inconsistent_condition_has_probability_zero() {
        let (t, w1, _, _) = table();
        let c = Condition::from_literals([Literal::pos(w1), Literal::neg(w1)]);
        assert!(!c.is_consistent());
        assert_eq!(c.probability(&t), 0.0);
    }

    #[test]
    fn empty_condition_is_true_and_certain() {
        let (t, _, _, _) = table();
        let c = Condition::always();
        assert!(c.is_consistent());
        assert_eq!(c.probability(&t), 1.0);
        let v = Valuation::empty(t.len());
        assert!(c.eval(&v));
    }

    #[test]
    fn and_minus_subset() {
        let (_, w1, w2, w3) = table();
        let a = Condition::from_literals([Literal::pos(w1), Literal::neg(w2)]);
        let b = Condition::from_literals([Literal::neg(w2), Literal::pos(w3)]);
        let ab = a.and(&b);
        assert_eq!(ab.len(), 3);
        assert!(a.subset_of(&ab));
        assert!(b.subset_of(&ab));
        let diff = ab.minus(&a);
        assert_eq!(diff, Condition::of(Literal::pos(w3)));
    }

    /// The class invariant `and`/`and_literal` rely on: literals stay
    /// sorted and deduplicated after merging, including overlapping and
    /// contradictory (both-polarity) inputs.
    fn assert_sorted_dedup(c: &Condition) {
        assert!(
            c.literals().windows(2).all(|w| w[0] < w[1]),
            "literals not strictly sorted: {:?}",
            c.literals()
        );
    }

    #[test]
    fn and_merge_preserves_sortedness_and_dedup() {
        let (_, w1, w2, w3) = table();
        // Overlapping literals (¬w2 in both) and a contradictory pair
        // (w1 in a, ¬w1 in b — both must survive, conditions may be
        // inconsistent).
        let a = Condition::from_literals([Literal::pos(w1), Literal::neg(w2)]);
        let b = Condition::from_literals([Literal::neg(w1), Literal::neg(w2), Literal::pos(w3)]);
        let ab = a.and(&b);
        assert_sorted_dedup(&ab);
        assert_eq!(ab.len(), 4, "shared ¬w2 deduplicated, ¬w1/w1 both kept");
        assert!(!ab.is_consistent());
        // The merge agrees with the re-sorting constructor.
        let reference =
            Condition::from_literals(a.literals().iter().chain(b.literals().iter()).copied());
        assert_eq!(ab, reference);
        // Commutative, and identity on the empty condition.
        assert_eq!(ab, b.and(&a));
        assert_eq!(a.and(&Condition::always()), a);
        assert_eq!(Condition::always().and(&a), a);
    }

    #[test]
    fn and_literal_inserts_in_sorted_position() {
        let (_, w1, w2, w3) = table();
        let base = Condition::from_literals([Literal::pos(w1), Literal::pos(w3)]);
        // Insert in the middle, at the front (¬w1 < w1), and a duplicate.
        let mid = base.and_literal(Literal::neg(w2));
        assert_sorted_dedup(&mid);
        assert_eq!(mid.len(), 3);
        let front = base.and_literal(Literal::neg(w1));
        assert_sorted_dedup(&front);
        assert_eq!(front.literals()[0], Literal::neg(w1));
        assert!(!front.is_consistent());
        let dup = base.and_literal(Literal::pos(w3));
        assert_eq!(dup, base);
    }

    #[test]
    fn and_merge_matches_constructor_on_many_random_pairs() {
        // Cross-check the linear merge against `from_literals` over every
        // subset pair of a small literal universe.
        let (_, w1, w2, w3) = table();
        let universe = [
            Literal::pos(w1),
            Literal::neg(w1),
            Literal::pos(w2),
            Literal::neg(w2),
            Literal::pos(w3),
        ];
        let subsets: Vec<Vec<Literal>> = (0..32usize)
            .map(|mask| {
                universe
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask >> i & 1 == 1)
                    .map(|(_, &l)| l)
                    .collect()
            })
            .collect();
        for xs in &subsets {
            for ys in &subsets {
                let a = Condition::from_literals(xs.iter().copied());
                let b = Condition::from_literals(ys.iter().copied());
                let merged = a.and(&b);
                assert_sorted_dedup(&merged);
                assert_eq!(
                    merged,
                    Condition::from_literals(xs.iter().chain(ys.iter()).copied())
                );
            }
        }
    }

    #[test]
    fn union_of_agrees_with_the_and_fold_on_all_small_triples() {
        // Exhaustive cross-check of the one-shot merge-union against the
        // legacy `Condition::always()` + repeated `and` fold, over every
        // triple of subsets of a 5-literal universe (incl. contradictory
        // and overlapping combinations).
        let (_, w1, w2, w3) = table();
        let universe = [
            Literal::pos(w1),
            Literal::neg(w1),
            Literal::pos(w2),
            Literal::neg(w2),
            Literal::pos(w3),
        ];
        let subsets: Vec<Condition> = (0..32usize)
            .map(|mask| {
                Condition::from_literals(
                    universe
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| mask >> i & 1 == 1)
                        .map(|(_, &l)| l),
                )
            })
            .collect();
        for a in &subsets {
            for b in &subsets {
                for c in &subsets {
                    let fold = Condition::always().and(a).and(b).and(c);
                    let union = Condition::union_of([a, b, c]);
                    assert_eq!(union, fold);
                    assert_sorted_dedup(&union);
                }
            }
        }
        // Degenerate arities.
        assert_eq!(Condition::union_of([]), Condition::always());
        let single = &subsets[7];
        assert_eq!(&Condition::union_of([single]), single);
    }

    #[test]
    fn disjointness_requires_a_complementary_pair() {
        let (_, w1, w2, w3) = table();
        let a = Condition::from_literals([Literal::pos(w1), Literal::neg(w2)]);
        let b = Condition::from_literals([Literal::neg(w1), Literal::pos(w3)]);
        assert!(a.is_disjoint_with(&b), "w1 vs ¬w1");
        assert!(b.is_disjoint_with(&a));
        let c = Condition::from_literals([Literal::pos(w1), Literal::pos(w3)]);
        assert!(!a.is_disjoint_with(&c), "compatible overlap");
        assert!(!a.is_disjoint_with(&Condition::always()));
        assert!(!Condition::always().is_disjoint_with(&Condition::always()));
    }

    #[test]
    fn assign_cofactors_conditions() {
        let (_, w1, w2, _) = table();
        let c = Condition::from_literals([Literal::pos(w1), Literal::neg(w2)]);
        // Satisfying assignment removes the literal.
        assert_eq!(c.assign(w1, true), Some(Condition::of(Literal::neg(w2))));
        // Falsifying assignment kills the condition.
        assert_eq!(c.assign(w1, false), None);
        // Unmentioned event leaves the condition unchanged.
        let (_, _, _, w3) = table();
        assert_eq!(c.assign(w3, true), Some(c.clone()));
        assert!(c.contains(Literal::pos(w1)));
        assert!(!c.contains(Literal::neg(w1)));
    }

    #[test]
    fn eval_under_valuations() {
        let (t, w1, w2, _) = table();
        let c = Condition::from_literals([Literal::pos(w1), Literal::neg(w2)]);
        let mut v = Valuation::empty(t.len());
        assert!(!c.eval(&v)); // w1 false
        v.set(w1, true);
        assert!(c.eval(&v)); // w1 true, w2 false
        v.set(w2, true);
        assert!(!c.eval(&v)); // ¬w2 violated
    }

    #[test]
    fn display_uses_event_names() {
        let (t, w1, w2, _) = table();
        let c = Condition::from_literals([Literal::pos(w1), Literal::neg(w2)]);
        assert_eq!(format!("{}", c.display(&t)), "w1 ∧ ¬w2");
        assert_eq!(format!("{}", Condition::always().display(&t)), "⊤");
    }

    #[test]
    fn mentions_and_events() {
        let (_, w1, w2, w3) = table();
        let c = Condition::from_literals([Literal::pos(w1), Literal::neg(w2)]);
        assert!(c.mentions(w1));
        assert!(c.mentions(w2));
        assert!(!c.mentions(w3));
        assert_eq!(c.events().count(), 2);
    }
}
