//! # pxml-events — probabilistic event variables and conditions
//!
//! The prob-tree model (Senellart & Abiteboul, PODS 2007, Section 2)
//! annotates tree nodes with *conditions*: conjunctions of possibly negated
//! **event variables**, in the style of the conditions of Imieliński &
//! Lipski's conditional tables. Each event variable `w` carries an
//! independent probability `π(w) ∈ (0, 1]`.
//!
//! This crate provides the building blocks shared by the rest of the
//! workspace:
//!
//! * [`EventId`], [`EventTable`] — the finite set `W` of event variables
//!   together with its probability distribution `π`.
//! * [`Literal`], [`Condition`] — atomic conditions `w` / `¬w` and their
//!   conjunctions, with consistency, implication, conjunction and
//!   probability evaluation (the `eval` of Definition 8).
//! * [`Valuation`] — a truth assignment `V ⊆ W`, with an iterator over all
//!   `2^{|W|}` assignments (used by the possible-world semantics and the
//!   exhaustive baselines; always bounded by the caller).
//! * [`Dnf`] — disjunctions of conditions and the *count-equivalence*
//!   relation of Definition 10, with the naive exponential decision
//!   procedure used as a baseline against the Schwartz–Zippel test of
//!   `pxml-poly`.
//! * [`Semiring`] — the commutative provenance semiring every condition
//!   fold is parameterized over, with the [`Probability`] fast path plus
//!   [`Possibility`], [`Counting`], [`TopKProofs`] and [`Lineage`]
//!   instances (see the [`semiring`] module docs for the law table).
//!
//! ## Quick example
//!
//! ```
//! use pxml_events::{Condition, EventTable, Literal};
//!
//! // Two independent events: π(w1) = 0.8, π(w2) = 0.7.
//! let mut events = EventTable::new();
//! let w1 = events.insert("w1", 0.8);
//! let w2 = events.insert("w2", 0.7);
//!
//! // The Figure 1 condition on node B: w1 ∧ ¬w2.
//! let cond = Condition::from_literals([Literal::pos(w1), Literal::neg(w2)]);
//! assert!(cond.is_consistent());
//! assert!((cond.probability(&events) - 0.8 * 0.3).abs() < pxml_events::PROB_EPS);
//!
//! // An inconsistent conjunction (w1 ∧ ¬w1) never holds.
//! let never = Condition::from_literals([Literal::pos(w1), Literal::neg(w1)]);
//! assert!(!never.is_consistent());
//! assert_eq!(never.probability(&events), 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod condition;
pub mod dnf;
pub mod event;
pub mod semiring;
pub mod valuation;

pub use condition::{Condition, Literal};
pub use dnf::Dnf;
pub use event::{EventId, EventTable};
pub use semiring::{Counting, Lineage, Possibility, Probability, Proof, Semiring, TopKProofs};
pub use valuation::Valuation;

/// Tolerance used throughout the workspace when comparing probabilities.
pub const PROB_EPS: f64 = 1e-9;

/// Compares two probabilities up to [`PROB_EPS`].
pub fn prob_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= PROB_EPS
}
