//! Event variables and their probability distribution.

use std::collections::HashMap;
use std::fmt;

/// Identifier of an event variable inside one [`EventTable`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventId(pub(crate) u32);

impl EventId {
    /// Raw index of the event variable in its table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an `EventId` from a raw index (for deserialization code that
    /// has validated the index).
    #[inline]
    pub fn from_index(index: usize) -> Self {
        EventId(index as u32)
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0 + 1)
    }
}

/// The finite set of event variables `W` of a prob-tree together with its
/// probability distribution `π : W → (0, 1]`.
///
/// The paper disallows zero probabilities (a convention: a zero-probability
/// update would simply not be performed); [`EventTable::insert`] enforces
/// `0 < p ≤ 1`.
#[derive(Clone, Debug, Default)]
pub struct EventTable {
    names: Vec<String>,
    probs: Vec<f64>,
    by_name: HashMap<String, EventId>,
}

impl EventTable {
    /// Creates an empty event table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new event variable with the given `name` and probability
    /// `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `(0, 1]`, or if `name` is already used.
    pub fn insert(&mut self, name: impl Into<String>, p: f64) -> EventId {
        let name = name.into();
        assert!(
            p > 0.0 && p <= 1.0,
            "event probability must lie in (0, 1], got {p}"
        );
        assert!(
            !self.by_name.contains_key(&name),
            "event variable named {name:?} already exists"
        );
        let id = EventId(self.names.len() as u32);
        self.by_name.insert(name.clone(), id);
        self.names.push(name);
        self.probs.push(p);
        id
    }

    /// Registers a fresh event variable with an auto-generated name
    /// (`w1`, `w2`, ...). Each probabilistic update introduces one such
    /// fresh event (Section 2 / Appendix A).
    pub fn fresh(&mut self, p: f64) -> EventId {
        let mut i = self.names.len() + 1;
        loop {
            let candidate = format!("w{i}");
            if !self.by_name.contains_key(&candidate) {
                return self.insert(candidate, p);
            }
            i += 1;
        }
    }

    /// Number of event variables.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table has no event variables.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The probability `π(w)` of an event.
    #[inline]
    pub fn prob(&self, event: EventId) -> f64 {
        self.probs[event.index()]
    }

    /// Overrides the probability of an existing event (used by the proof of
    /// Proposition 4 style constructions and by tests).
    pub fn set_prob(&mut self, event: EventId, p: f64) {
        assert!(
            p > 0.0 && p <= 1.0,
            "event probability must lie in (0, 1], got {p}"
        );
        self.probs[event.index()] = p;
    }

    /// The name of an event.
    #[inline]
    pub fn name(&self, event: EventId) -> &str {
        &self.names[event.index()]
    }

    /// Looks an event up by name.
    pub fn by_name(&self, name: &str) -> Option<EventId> {
        self.by_name.get(name).copied()
    }

    /// Iterates over all events in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = EventId> + '_ {
        (0..self.names.len() as u32).map(EventId)
    }

    /// `true` if the two tables declare the same events with the same
    /// probabilities (structural equivalence in the paper requires
    /// "the same event variables and distribution").
    pub fn same_distribution(&self, other: &EventTable) -> bool {
        self.len() == other.len()
            && self.iter().all(|e| {
                self.name(e) == other.name(e) && crate::prob_eq(self.prob(e), other.prob(e))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_lookup() {
        let mut table = EventTable::new();
        let w1 = table.insert("w1", 0.8);
        let w2 = table.insert("w2", 0.7);
        assert_eq!(table.len(), 2);
        assert_eq!(table.prob(w1), 0.8);
        assert_eq!(table.name(w2), "w2");
        assert_eq!(table.by_name("w1"), Some(w1));
        assert_eq!(table.by_name("nope"), None);
    }

    #[test]
    #[should_panic(expected = "must lie in (0, 1]")]
    fn zero_probability_is_rejected() {
        let mut table = EventTable::new();
        table.insert("w", 0.0);
    }

    #[test]
    #[should_panic(expected = "must lie in (0, 1]")]
    fn probability_above_one_is_rejected() {
        let mut table = EventTable::new();
        table.insert("w", 1.5);
    }

    #[test]
    #[should_panic(expected = "already exists")]
    fn duplicate_names_are_rejected() {
        let mut table = EventTable::new();
        table.insert("w", 0.5);
        table.insert("w", 0.6);
    }

    #[test]
    fn fresh_generates_unused_names() {
        let mut table = EventTable::new();
        table.insert("w1", 0.5);
        let fresh = table.fresh(0.3);
        assert_ne!(table.name(fresh), "w1");
        assert_eq!(table.prob(fresh), 0.3);
        let fresh2 = table.fresh(0.2);
        assert_ne!(table.name(fresh2), table.name(fresh));
    }

    #[test]
    fn probability_one_is_allowed() {
        let mut table = EventTable::new();
        let w = table.insert("certain", 1.0);
        assert_eq!(table.prob(w), 1.0);
    }

    #[test]
    fn same_distribution_checks_names_and_probs() {
        let mut a = EventTable::new();
        a.insert("w1", 0.8);
        a.insert("w2", 0.7);
        let mut b = EventTable::new();
        b.insert("w1", 0.8);
        b.insert("w2", 0.7);
        assert!(a.same_distribution(&b));
        b.set_prob(EventId(1), 0.6);
        assert!(!a.same_distribution(&b));
    }

    #[test]
    fn iter_visits_in_insertion_order() {
        let mut table = EventTable::new();
        let ids: Vec<_> = (0..5).map(|i| table.insert(format!("e{i}"), 0.5)).collect();
        let iterated: Vec<_> = table.iter().collect();
        assert_eq!(ids, iterated);
    }
}
