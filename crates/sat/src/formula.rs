//! Arbitrary propositional formulas.
//!
//! The paper's Section 5 variant annotates prob-tree nodes with arbitrary
//! propositional formulas rather than conjunctions. This module provides
//! the formula AST with evaluation, negation-normal-form, a naive
//! distributive CNF/DNF conversion (exponential; used on small formulas and
//! in tests) and the linear-size Tseitin encoding used for solver calls.

use crate::cnf::{Cnf, Lit, Var};

/// An arbitrary propositional formula over variables [`Var`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Formula {
    /// The constant true.
    True,
    /// The constant false.
    False,
    /// A propositional variable.
    Var(Var),
    /// Negation.
    Not(Box<Formula>),
    /// Conjunction (empty conjunction is true).
    And(Vec<Formula>),
    /// Disjunction (empty disjunction is false).
    Or(Vec<Formula>),
}

impl Formula {
    /// The variable `v` as a formula.
    pub fn var(v: u32) -> Formula {
        Formula::Var(Var(v))
    }

    /// Negation of `self`.
    #[allow(clippy::should_implement_trait)] // builder-style helper, `Not` impl is not needed
    pub fn not(self) -> Formula {
        Formula::Not(Box::new(self))
    }

    /// Conjunction of two formulas.
    pub fn and(self, other: Formula) -> Formula {
        Formula::And(vec![self, other])
    }

    /// Disjunction of two formulas.
    pub fn or(self, other: Formula) -> Formula {
        Formula::Or(vec![self, other])
    }

    /// Evaluation under a total assignment.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        match self {
            Formula::True => true,
            Formula::False => false,
            Formula::Var(v) => assignment[v.index()],
            Formula::Not(f) => !f.eval(assignment),
            Formula::And(fs) => fs.iter().all(|f| f.eval(assignment)),
            Formula::Or(fs) => fs.iter().any(|f| f.eval(assignment)),
        }
    }

    /// Largest variable index mentioned, plus one (0 if no variable).
    pub fn num_vars(&self) -> usize {
        match self {
            Formula::True | Formula::False => 0,
            Formula::Var(v) => v.index() + 1,
            Formula::Not(f) => f.num_vars(),
            Formula::And(fs) | Formula::Or(fs) => {
                fs.iter().map(Formula::num_vars).max().unwrap_or(0)
            }
        }
    }

    /// Number of AST nodes (a size measure for complexity experiments).
    pub fn size(&self) -> usize {
        match self {
            Formula::True | Formula::False | Formula::Var(_) => 1,
            Formula::Not(f) => 1 + f.size(),
            Formula::And(fs) | Formula::Or(fs) => 1 + fs.iter().map(Formula::size).sum::<usize>(),
        }
    }

    /// Negation normal form: negations pushed to the leaves, constants
    /// simplified away where trivially possible.
    pub fn to_nnf(&self) -> Formula {
        self.nnf_inner(false)
    }

    fn nnf_inner(&self, negate: bool) -> Formula {
        match self {
            Formula::True => {
                if negate {
                    Formula::False
                } else {
                    Formula::True
                }
            }
            Formula::False => {
                if negate {
                    Formula::True
                } else {
                    Formula::False
                }
            }
            Formula::Var(v) => {
                if negate {
                    Formula::Not(Box::new(Formula::Var(*v)))
                } else {
                    Formula::Var(*v)
                }
            }
            Formula::Not(f) => f.nnf_inner(!negate),
            Formula::And(fs) => {
                let children: Vec<Formula> = fs.iter().map(|f| f.nnf_inner(negate)).collect();
                if negate {
                    Formula::Or(children)
                } else {
                    Formula::And(children)
                }
            }
            Formula::Or(fs) => {
                let children: Vec<Formula> = fs.iter().map(|f| f.nnf_inner(negate)).collect();
                if negate {
                    Formula::And(children)
                } else {
                    Formula::Or(children)
                }
            }
        }
    }

    /// Naive CNF via distribution on the NNF. Exponential in the worst
    /// case; intended for small formulas and tests.
    pub fn to_cnf_naive(&self) -> Cnf {
        // Represent intermediate results as a set of clauses.
        fn go(f: &Formula) -> Option<Vec<Vec<Lit>>> {
            // None = formula is False (unsatisfiable on its own, represented
            // as a single empty clause by the caller).
            match f {
                Formula::True => Some(vec![]),
                Formula::False => Some(vec![vec![]]),
                Formula::Var(v) => Some(vec![vec![Lit::pos(*v)]]),
                Formula::Not(inner) => match inner.as_ref() {
                    Formula::Var(v) => Some(vec![vec![Lit::neg(*v)]]),
                    _ => unreachable!("to_cnf_naive runs on NNF"),
                },
                Formula::And(fs) => {
                    let mut clauses = Vec::new();
                    for f in fs {
                        clauses.extend(go(f)?);
                    }
                    Some(clauses)
                }
                Formula::Or(fs) => {
                    // Distribute: start with one empty clause and take the
                    // cross product with each disjunct's clause set.
                    let mut acc: Vec<Vec<Lit>> = vec![vec![]];
                    for f in fs {
                        let sub = go(f)?;
                        let mut next = Vec::new();
                        for a in &acc {
                            for s in &sub {
                                let mut clause = a.clone();
                                clause.extend(s.iter().copied());
                                next.push(clause);
                            }
                        }
                        acc = next;
                    }
                    Some(acc)
                }
            }
        }
        let nnf = self.to_nnf();
        let mut cnf = Cnf::new(self.num_vars());
        for clause in go(&nnf).unwrap_or_else(|| vec![vec![]]) {
            cnf.add_clause(clause);
        }
        cnf
    }

    /// Tseitin transformation: an equisatisfiable CNF of size linear in the
    /// formula, using fresh auxiliary variables starting at
    /// `self.num_vars()` (or `first_aux_var` if larger).
    pub fn to_cnf_tseitin(&self, first_aux_var: usize) -> Cnf {
        let nnf = self.to_nnf();
        let mut cnf = Cnf::new(self.num_vars().max(first_aux_var));
        let mut next_aux = self.num_vars().max(first_aux_var);
        let top = tseitin(&nnf, &mut cnf, &mut next_aux);
        match top {
            TseitinResult::Const(true) => {}
            TseitinResult::Const(false) => cnf.add_clause(vec![]),
            TseitinResult::Lit(lit) => cnf.add_clause(vec![lit]),
        }
        cnf
    }
}

enum TseitinResult {
    Const(bool),
    Lit(Lit),
}

fn tseitin(f: &Formula, cnf: &mut Cnf, next_aux: &mut usize) -> TseitinResult {
    match f {
        Formula::True => TseitinResult::Const(true),
        Formula::False => TseitinResult::Const(false),
        Formula::Var(v) => TseitinResult::Lit(Lit::pos(*v)),
        Formula::Not(inner) => match inner.as_ref() {
            Formula::Var(v) => TseitinResult::Lit(Lit::neg(*v)),
            _ => unreachable!("tseitin runs on NNF"),
        },
        Formula::And(fs) | Formula::Or(fs) => {
            let is_and = matches!(f, Formula::And(_));
            let mut lits = Vec::new();
            for child in fs {
                match tseitin(child, cnf, next_aux) {
                    TseitinResult::Const(c) => {
                        if is_and && !c {
                            return TseitinResult::Const(false);
                        }
                        if !is_and && c {
                            return TseitinResult::Const(true);
                        }
                        // Neutral element: skip.
                    }
                    TseitinResult::Lit(l) => lits.push(l),
                }
            }
            if lits.is_empty() {
                return TseitinResult::Const(is_and);
            }
            let aux = Var(*next_aux as u32);
            *next_aux += 1;
            cnf.num_vars = cnf.num_vars.max(*next_aux);
            if is_and {
                // aux -> each lit ; (all lits) -> aux
                for &l in &lits {
                    cnf.add_clause(vec![Lit::neg(aux), l]);
                }
                let mut back: Vec<Lit> = lits.iter().map(|l| l.negated()).collect();
                back.push(Lit::pos(aux));
                cnf.add_clause(back);
            } else {
                // aux -> (some lit) ; each lit -> aux
                let mut fwd: Vec<Lit> = lits.clone();
                fwd.insert(0, Lit::neg(aux));
                cnf.add_clause(fwd);
                for &l in &lits {
                    cnf.add_clause(vec![l.negated(), Lit::pos(aux)]);
                }
            }
            TseitinResult::Lit(Lit::pos(aux))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::solve_brute;
    use crate::dpll::solve_dpll;

    fn x(i: u32) -> Formula {
        Formula::var(i)
    }

    #[test]
    fn eval_basic() {
        let f = x(0).and(x(1).not()).or(Formula::False);
        assert!(f.eval(&[true, false]));
        assert!(!f.eval(&[true, true]));
        assert!(!f.eval(&[false, false]));
    }

    #[test]
    fn nnf_pushes_negations_to_leaves() {
        // ¬(x0 ∧ ¬x1)  ==  ¬x0 ∨ x1
        let f = x(0).and(x(1).not()).not();
        let nnf = f.to_nnf();
        // Check semantics preserved on all assignments.
        for a in [[false, false], [false, true], [true, false], [true, true]] {
            assert_eq!(f.eval(&a), nnf.eval(&a));
        }
        // And no Not applied to a non-variable remains.
        fn check(f: &Formula) {
            match f {
                Formula::Not(inner) => assert!(matches!(inner.as_ref(), Formula::Var(_))),
                Formula::And(fs) | Formula::Or(fs) => fs.iter().for_each(check),
                _ => {}
            }
        }
        check(&nnf);
    }

    #[test]
    fn naive_cnf_preserves_semantics() {
        let f = x(0).and(x(1).not()).or(x(2).and(x(0).not()));
        let cnf = f.to_cnf_naive();
        for bits in 0..8u32 {
            let a = [bits & 1 == 1, bits & 2 == 2, bits & 4 == 4];
            assert_eq!(f.eval(&a), cnf.eval(&a), "assignment {a:?}");
        }
    }

    #[test]
    fn tseitin_is_equisatisfiable() {
        // Check on a batch of formulas that tseitin SAT == brute SAT of the
        // original formula.
        let formulas = vec![
            x(0).and(x(0).not()),                                      // UNSAT
            x(0).or(x(1)),                                             // SAT
            x(0).and(x(1).not()).or(x(2).and(x(0).not())),             // SAT
            Formula::And(vec![x(0).or(x(1)), x(0).not(), x(1).not()]), // UNSAT
            Formula::True,
            Formula::False,
        ];
        for f in formulas {
            let n = f.num_vars();
            // Brute-force satisfiability of the original formula.
            let mut sat = false;
            for bits in 0..(1u32 << n.max(1)) {
                let a: Vec<bool> = (0..n.max(1)).map(|i| bits & (1 << i) != 0).collect();
                if f.eval(&a[..n.min(a.len())]) {
                    sat = true;
                    break;
                }
            }
            let tseitin = f.to_cnf_tseitin(0);
            assert_eq!(solve_dpll(&tseitin).is_some(), sat, "formula {f:?}");
            assert_eq!(solve_brute(&tseitin).is_some(), sat, "formula {f:?}");
        }
    }

    #[test]
    fn tseitin_size_is_linear() {
        // A balanced OR of ANDs over 32 variables: naive CNF would blow up
        // (2^16 clauses); Tseitin stays linear.
        let mut disjuncts = Vec::new();
        for i in 0..16u32 {
            disjuncts.push(x(2 * i).and(x(2 * i + 1)));
        }
        let f = Formula::Or(disjuncts);
        let cnf = f.to_cnf_tseitin(0);
        assert!(cnf.len() < 200, "clauses: {}", cnf.len());
        assert!(solve_dpll(&cnf).is_some());
    }

    #[test]
    fn size_and_num_vars() {
        let f = x(0).and(x(5).not());
        assert_eq!(f.num_vars(), 6);
        assert_eq!(f.size(), 4); // And, Var, Not, Var
    }

    #[test]
    fn constants_in_connectives() {
        let t = Formula::And(vec![]);
        assert!(t.eval(&[]));
        let f = Formula::Or(vec![]);
        assert!(!f.eval(&[]));
        let g = Formula::And(vec![Formula::True, x(0)]);
        let cnf = g.to_cnf_tseitin(0);
        assert!(solve_dpll(&cnf).is_some());
    }
}
