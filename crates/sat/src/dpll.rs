//! A DPLL satisfiability solver.
//!
//! Deliberately simple (no clause learning): unit propagation, pure-literal
//! elimination and most-occurrences branching are enough for the workloads
//! of the E8 experiment (random 3-CNF up to ~22 variables and the Theorem 5
//! reduction instances), while still showing the expected exponential
//! worst-case growth and the large practical gap to the brute-force
//! baseline.

use crate::cnf::{Cnf, Lit, Var};

/// Statistics collected during solving (used by the benchmark tables).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DpllStats {
    /// Number of branching decisions.
    pub decisions: u64,
    /// Number of literals assigned by unit propagation.
    pub propagations: u64,
}

/// Solves `cnf`, returning a satisfying assignment (`assignment[v]` is the
/// value of variable `v`) or `None` if unsatisfiable.
pub fn solve_dpll(cnf: &Cnf) -> Option<Vec<bool>> {
    solve_dpll_with_stats(cnf).0
}

/// Solves `cnf` and also reports search statistics.
pub fn solve_dpll_with_stats(cnf: &Cnf) -> (Option<Vec<bool>>, DpllStats) {
    let mut stats = DpllStats::default();
    let mut assignment: Vec<Option<bool>> = vec![None; cnf.num_vars];
    let sat = dpll(cnf, &mut assignment, &mut stats);
    if sat {
        // Unconstrained variables default to false.
        (
            Some(assignment.iter().map(|v| v.unwrap_or(false)).collect()),
            stats,
        )
    } else {
        (None, stats)
    }
}

/// Clause status under a partial assignment.
enum ClauseState {
    Satisfied,
    /// All literals false.
    Conflict,
    /// Exactly one unassigned literal left (that literal).
    Unit(Lit),
    /// Two or more unassigned literals.
    Unresolved,
}

fn clause_state(clause: &[Lit], assignment: &[Option<bool>]) -> ClauseState {
    let mut unassigned: Option<Lit> = None;
    let mut unassigned_count = 0;
    for &lit in clause {
        match assignment[lit.var.index()] {
            Some(value) if value == lit.positive => return ClauseState::Satisfied,
            Some(_) => {}
            None => {
                unassigned = Some(lit);
                unassigned_count += 1;
            }
        }
    }
    match unassigned_count {
        0 => ClauseState::Conflict,
        1 => ClauseState::Unit(unassigned.expect("counted one unassigned literal")),
        _ => ClauseState::Unresolved,
    }
}

fn dpll(cnf: &Cnf, assignment: &mut Vec<Option<bool>>, stats: &mut DpllStats) -> bool {
    // Unit propagation to fixpoint.
    let mut trail: Vec<Var> = Vec::new();
    loop {
        let mut changed = false;
        for clause in &cnf.clauses {
            match clause_state(clause, assignment) {
                ClauseState::Conflict => {
                    for var in trail {
                        assignment[var.index()] = None;
                    }
                    return false;
                }
                ClauseState::Unit(lit) => {
                    assignment[lit.var.index()] = Some(lit.positive);
                    trail.push(lit.var);
                    stats.propagations += 1;
                    changed = true;
                }
                _ => {}
            }
        }
        if !changed {
            break;
        }
    }

    // Pure literal elimination + pick the most frequent unassigned variable.
    let mut pos_count = vec![0u32; cnf.num_vars];
    let mut neg_count = vec![0u32; cnf.num_vars];
    let mut any_unresolved = false;
    for clause in &cnf.clauses {
        if matches!(clause_state(clause, assignment), ClauseState::Satisfied) {
            continue;
        }
        any_unresolved = true;
        for &lit in clause {
            if assignment[lit.var.index()].is_none() {
                if lit.positive {
                    pos_count[lit.var.index()] += 1;
                } else {
                    neg_count[lit.var.index()] += 1;
                }
            }
        }
    }
    if !any_unresolved {
        return true; // every clause satisfied
    }

    // Pure literals can be assigned without branching.
    let mut assigned_pure = false;
    for v in 0..cnf.num_vars {
        if assignment[v].is_none() && (pos_count[v] > 0) != (neg_count[v] > 0) {
            assignment[v] = Some(pos_count[v] > 0);
            trail.push(Var(v as u32));
            stats.propagations += 1;
            assigned_pure = true;
        }
    }
    if assigned_pure {
        if dpll(cnf, assignment, stats) {
            return true;
        }
        for var in trail {
            assignment[var.index()] = None;
        }
        return false;
    }

    // Branch on the variable with the most occurrences.
    let branch_var = (0..cnf.num_vars)
        .filter(|&v| assignment[v].is_none())
        .max_by_key(|&v| pos_count[v] + neg_count[v]);
    let Some(v) = branch_var else {
        // No unassigned variable but some clause unresolved: impossible,
        // because an unresolved clause has unassigned literals.
        unreachable!("unresolved clause without unassigned variables");
    };
    stats.decisions += 1;
    let first = pos_count[v] >= neg_count[v];
    for value in [first, !first] {
        assignment[v] = Some(value);
        if dpll(cnf, assignment, stats) {
            return true;
        }
        assignment[v] = None;
    }
    for var in trail {
        assignment[var.index()] = None;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::solve_brute;
    use crate::cnf::{Cnf, Lit, Var};

    fn p(v: u32) -> Lit {
        Lit::pos(Var(v))
    }
    fn n(v: u32) -> Lit {
        Lit::neg(Var(v))
    }

    #[test]
    fn empty_cnf_is_sat() {
        let cnf = Cnf::new(3);
        let model = solve_dpll(&cnf).expect("empty CNF is satisfiable");
        assert_eq!(model.len(), 3);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut cnf = Cnf::new(1);
        cnf.add_clause(vec![]);
        assert!(solve_dpll(&cnf).is_none());
    }

    #[test]
    fn simple_sat_instance() {
        // (x0 ∨ x1) ∧ (¬x0 ∨ x1) ∧ (¬x1 ∨ x2)
        let mut cnf = Cnf::new(3);
        cnf.add_clause(vec![p(0), p(1)]);
        cnf.add_clause(vec![n(0), p(1)]);
        cnf.add_clause(vec![n(1), p(2)]);
        let model = solve_dpll(&cnf).expect("satisfiable");
        assert!(cnf.eval(&model));
    }

    #[test]
    fn simple_unsat_instance() {
        // (x0) ∧ (¬x0)
        let mut cnf = Cnf::new(1);
        cnf.add_clause(vec![p(0)]);
        cnf.add_clause(vec![n(0)]);
        assert!(solve_dpll(&cnf).is_none());
    }

    #[test]
    fn pigeonhole_2_into_1_is_unsat() {
        // Two pigeons, one hole: p0 ∨ nothing... encode classically:
        // pigeon i in hole -> variable xi; both must be placed, cannot share.
        let mut cnf = Cnf::new(2);
        cnf.add_clause(vec![p(0)]);
        cnf.add_clause(vec![p(1)]);
        cnf.add_clause(vec![n(0), n(1)]);
        assert!(solve_dpll(&cnf).is_none());
    }

    #[test]
    fn model_satisfies_formula_and_stats_are_recorded() {
        let mut cnf = Cnf::new(4);
        cnf.add_clause(vec![p(0), p(1), p(2)]);
        cnf.add_clause(vec![n(0), p(3)]);
        cnf.add_clause(vec![n(1), n(3)]);
        cnf.add_clause(vec![p(2), n(3)]);
        let (model, stats) = solve_dpll_with_stats(&cnf);
        let model = model.expect("satisfiable");
        assert!(cnf.eval(&model));
        assert!(stats.decisions + stats.propagations > 0);
    }

    #[test]
    fn agrees_with_brute_force_on_random_instances() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            let num_vars = rng.gen_range(1..8usize);
            let num_clauses = rng.gen_range(0..20usize);
            let mut cnf = Cnf::new(num_vars);
            for _ in 0..num_clauses {
                let len = rng.gen_range(1..4usize);
                let clause: Vec<Lit> = (0..len)
                    .map(|_| Lit {
                        var: Var(rng.gen_range(0..num_vars) as u32),
                        positive: rng.gen_bool(0.5),
                    })
                    .collect();
                cnf.add_clause(clause);
            }
            let dpll_sat = solve_dpll(&cnf).is_some();
            let brute_sat = solve_brute(&cnf).is_some();
            assert_eq!(dpll_sat, brute_sat, "cnf: {cnf}");
        }
    }
}
