//! Exhaustive satisfiability checking.
//!
//! This is the literal "guess a valuation of the event variables and check"
//! NP algorithm that the paper describes for DTD satisfiability
//! (Theorem 5), turned into a deterministic exponential sweep. It doubles
//! as ground truth for the DPLL solver and as the slow baseline in the E8
//! benchmark.

use crate::cnf::Cnf;

/// Returns a satisfying assignment found by enumerating all `2^n`
/// assignments, or `None` if the CNF is unsatisfiable.
///
/// # Panics
/// Panics if the CNF has more than 30 variables (the caller should use
/// [`crate::dpll::solve_dpll`] instead).
pub fn solve_brute(cnf: &Cnf) -> Option<Vec<bool>> {
    assert!(
        cnf.num_vars <= 30,
        "brute-force SAT limited to 30 variables, got {}",
        cnf.num_vars
    );
    let n = cnf.num_vars;
    for bits in 0u64..(1u64 << n) {
        let assignment: Vec<bool> = (0..n).map(|i| bits & (1 << i) != 0).collect();
        if cnf.eval(&assignment) {
            return Some(assignment);
        }
    }
    None
}

/// Counts the satisfying assignments by exhaustive enumeration (used by
/// tests that need exact model counts).
pub fn count_models_brute(cnf: &Cnf) -> u64 {
    assert!(
        cnf.num_vars <= 30,
        "brute-force model counting limited to 30 variables, got {}",
        cnf.num_vars
    );
    let n = cnf.num_vars;
    (0u64..(1u64 << n))
        .filter(|bits| {
            let assignment: Vec<bool> = (0..n).map(|i| bits & (1 << i) != 0).collect();
            cnf.eval(&assignment)
        })
        .count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::{Cnf, Lit, Var};

    #[test]
    fn finds_model_for_satisfiable_cnf() {
        let mut cnf = Cnf::new(2);
        cnf.add_clause(vec![Lit::pos(Var(0)), Lit::pos(Var(1))]);
        cnf.add_clause(vec![Lit::neg(Var(0))]);
        let model = solve_brute(&cnf).expect("satisfiable");
        assert!(cnf.eval(&model));
        assert!(!model[0]);
        assert!(model[1]);
    }

    #[test]
    fn detects_unsat() {
        let mut cnf = Cnf::new(1);
        cnf.add_clause(vec![Lit::pos(Var(0))]);
        cnf.add_clause(vec![Lit::neg(Var(0))]);
        assert!(solve_brute(&cnf).is_none());
    }

    #[test]
    fn model_counting() {
        // x0 ∨ x1 over 2 variables has 3 models.
        let mut cnf = Cnf::new(2);
        cnf.add_clause(vec![Lit::pos(Var(0)), Lit::pos(Var(1))]);
        assert_eq!(count_models_brute(&cnf), 3);
        // Empty CNF over 3 vars: all 8 assignments.
        assert_eq!(count_models_brute(&Cnf::new(3)), 8);
    }

    #[test]
    #[should_panic(expected = "limited to 30 variables")]
    fn refuses_huge_instances() {
        let cnf = Cnf::new(31);
        solve_brute(&cnf);
    }
}
