//! # pxml-sat — propositional formulas and a DPLL SAT solver
//!
//! Theorem 5 of Senellart & Abiteboul (PODS 2007) proves DTD satisfiability
//! of prob-trees NP-complete and DTD validity co-NP-complete via a
//! reduction from SAT, and Section 5 observes that allowing arbitrary
//! propositional formulas as node conditions makes boolean query
//! evaluation NP-complete. Both the DTD checkers (`pxml-dtd`) and the
//! arbitrary-formula variant (`pxml-core::variants`) therefore need a
//! propositional-logic substrate:
//!
//! * [`formula::Formula`] — arbitrary propositional formulas over `u32`
//!   variables, with evaluation, NNF, naive CNF, and Tseitin encoding.
//! * [`cnf`] — CNF clause databases.
//! * [`dpll`] — a DPLL solver (unit propagation, pure-literal elimination,
//!   most-occurrences branching).
//! * [`brute`] — an exhaustive baseline solver used for cross-checking and
//!   as the "guess a valuation" NP algorithm the paper describes.
//! * [`gen3sat`] — random 3-CNF generation at a configurable clause/var
//!   ratio (the E8 workload).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod brute;
pub mod cnf;
pub mod dpll;
pub mod formula;
pub mod gen3sat;

pub use cnf::{Clause, Cnf, Lit, Var};
pub use dpll::{solve_dpll, DpllStats};
pub use formula::Formula;
