//! Random 3-CNF generation.
//!
//! The E8 experiment (Theorem 5: DTD satisfiability is NP-complete in the
//! number of event variables) uses random 3-SAT instances near the
//! satisfiability phase transition (clause/variable ratio ≈ 4.26), turned
//! into prob-trees and DTDs by the reduction of the paper's proof.

use rand::Rng;

use crate::cnf::{Cnf, Lit, Var};

/// Parameters for random 3-CNF generation.
#[derive(Clone, Copy, Debug)]
pub struct ThreeSatConfig {
    /// Number of variables.
    pub num_vars: usize,
    /// Number of clauses.
    pub num_clauses: usize,
}

impl ThreeSatConfig {
    /// The classic hard regime: `ratio` clauses per variable (4.26 is the
    /// phase-transition value).
    pub fn at_ratio(num_vars: usize, ratio: f64) -> Self {
        ThreeSatConfig {
            num_vars,
            num_clauses: ((num_vars as f64) * ratio).round() as usize,
        }
    }
}

/// Generates a random 3-CNF with distinct variables per clause.
pub fn random_3sat<R: Rng + ?Sized>(config: ThreeSatConfig, rng: &mut R) -> Cnf {
    assert!(config.num_vars >= 3, "3-SAT needs at least 3 variables");
    let mut cnf = Cnf::new(config.num_vars);
    for _ in 0..config.num_clauses {
        // Pick three distinct variables.
        let mut vars = Vec::with_capacity(3);
        while vars.len() < 3 {
            let v = rng.gen_range(0..config.num_vars);
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
        let clause: Vec<Lit> = vars
            .into_iter()
            .map(|v| Lit {
                var: Var(v as u32),
                positive: rng.gen_bool(0.5),
            })
            .collect();
        cnf.add_clause(clause);
    }
    cnf
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generates_requested_shape() {
        let mut rng = StdRng::seed_from_u64(7);
        let cnf = random_3sat(ThreeSatConfig::at_ratio(10, 4.26), &mut rng);
        assert_eq!(cnf.num_vars, 10);
        assert_eq!(cnf.len(), 43);
        for clause in &cnf.clauses {
            assert_eq!(clause.len(), 3);
            let mut vars: Vec<_> = clause.iter().map(|l| l.var).collect();
            vars.sort();
            vars.dedup();
            assert_eq!(vars.len(), 3, "variables within a clause are distinct");
        }
    }

    #[test]
    fn low_ratio_instances_are_usually_sat() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut sat_count = 0;
        for _ in 0..10 {
            let cnf = random_3sat(ThreeSatConfig::at_ratio(12, 2.0), &mut rng);
            if crate::dpll::solve_dpll(&cnf).is_some() {
                sat_count += 1;
            }
        }
        assert!(
            sat_count >= 8,
            "only {sat_count}/10 low-ratio instances were SAT"
        );
    }

    #[test]
    #[should_panic(expected = "at least 3 variables")]
    fn rejects_tiny_variable_counts() {
        let mut rng = StdRng::seed_from_u64(0);
        random_3sat(
            ThreeSatConfig {
                num_vars: 2,
                num_clauses: 1,
            },
            &mut rng,
        );
    }
}
