//! Conjunctive normal form clause databases.

use std::fmt;

/// A propositional variable, identified by a dense index.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Var(pub u32);

impl Var {
    /// Raw index of the variable.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a variable with a polarity.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Lit {
    /// The variable.
    pub var: Var,
    /// `true` for the positive literal.
    pub positive: bool,
}

impl Lit {
    /// Positive literal of `var`.
    pub fn pos(var: Var) -> Self {
        Lit {
            var,
            positive: true,
        }
    }

    /// Negative literal of `var`.
    pub fn neg(var: Var) -> Self {
        Lit {
            var,
            positive: false,
        }
    }

    /// The opposite literal.
    pub fn negated(self) -> Self {
        Lit {
            var: self.var,
            positive: !self.positive,
        }
    }

    /// Truth value under a (total) assignment.
    pub fn eval(self, assignment: &[bool]) -> bool {
        assignment[self.var.index()] == self.positive
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.positive {
            write!(f, "{}", self.var)
        } else {
            write!(f, "¬{}", self.var)
        }
    }
}

/// A clause: a disjunction of literals. The empty clause is unsatisfiable.
pub type Clause = Vec<Lit>;

/// A CNF formula: a conjunction of clauses over variables `0..num_vars`.
#[derive(Clone, Debug, Default)]
pub struct Cnf {
    /// Number of variables (variables are `Var(0)..Var(num_vars)`).
    pub num_vars: usize,
    /// The clauses.
    pub clauses: Vec<Clause>,
}

impl Cnf {
    /// An empty CNF (trivially satisfiable) over `num_vars` variables.
    pub fn new(num_vars: usize) -> Self {
        Cnf {
            num_vars,
            clauses: Vec::new(),
        }
    }

    /// Adds a clause, growing `num_vars` if the clause mentions new
    /// variables.
    pub fn add_clause(&mut self, clause: Clause) {
        for lit in &clause {
            self.num_vars = self.num_vars.max(lit.var.index() + 1);
        }
        self.clauses.push(clause);
    }

    /// Number of clauses.
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// `true` if there are no clauses.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Evaluates the CNF under a total assignment.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.clauses
            .iter()
            .all(|clause| clause.iter().any(|lit| lit.eval(assignment)))
    }

    /// Total number of literal occurrences.
    pub fn literal_count(&self) -> usize {
        self.clauses.iter().map(Vec::len).sum()
    }
}

impl fmt::Display for Cnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.clauses.is_empty() {
            return write!(f, "⊤");
        }
        for (i, clause) in self.clauses.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "(")?;
            for (j, lit) in clause.iter().enumerate() {
                if j > 0 {
                    write!(f, " ∨ ")?;
                }
                write!(f, "{lit}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_eval_and_negation() {
        let x = Var(0);
        let assignment = vec![true, false];
        assert!(Lit::pos(x).eval(&assignment));
        assert!(!Lit::neg(x).eval(&assignment));
        assert_eq!(Lit::pos(x).negated(), Lit::neg(x));
    }

    #[test]
    fn cnf_eval() {
        // (x0 ∨ ¬x1) ∧ (x1)
        let mut cnf = Cnf::new(2);
        cnf.add_clause(vec![Lit::pos(Var(0)), Lit::neg(Var(1))]);
        cnf.add_clause(vec![Lit::pos(Var(1))]);
        assert!(cnf.eval(&[true, true]));
        assert!(!cnf.eval(&[false, true]));
        assert!(!cnf.eval(&[true, false]), "second clause unsatisfied");
    }

    #[test]
    fn add_clause_grows_num_vars() {
        let mut cnf = Cnf::new(0);
        cnf.add_clause(vec![Lit::pos(Var(5))]);
        assert_eq!(cnf.num_vars, 6);
        assert_eq!(cnf.literal_count(), 1);
    }

    #[test]
    fn empty_cnf_is_true() {
        let cnf = Cnf::new(3);
        assert!(cnf.eval(&[false, false, false]));
        assert!(cnf.is_empty());
    }

    #[test]
    fn empty_clause_is_false() {
        let mut cnf = Cnf::new(1);
        cnf.add_clause(vec![]);
        assert!(!cnf.eval(&[true]));
    }

    #[test]
    fn display_renders_clauses() {
        let mut cnf = Cnf::new(2);
        cnf.add_clause(vec![Lit::pos(Var(0)), Lit::neg(Var(1))]);
        assert_eq!(format!("{cnf}"), "(x0 ∨ ¬x1)");
        assert_eq!(format!("{}", Cnf::new(0)), "⊤");
    }
}
