//! Tree statistics and the enumeration background of Proposition 1.
//!
//! Proposition 1 of the paper lower-bounds the average representation size
//! of possible-world sets by counting rooted unordered unlabeled trees with
//! at most `n` nodes (Otter's asymptotics `a_n ~ α^{n-1}·β/(2πn^{3/2})`,
//! α ≈ 2.9557). [`rooted_tree_counts`] computes the exact sequence via the
//! standard Euler-transform recurrence, which the E2 experiment uses to
//! report the doubly-exponential count of possible-world sets.

use std::collections::HashMap;

use crate::arena::DataTree;

/// Summary statistics of a data tree.
#[derive(Clone, Debug, PartialEq)]
pub struct TreeStats {
    /// Number of reachable nodes.
    pub nodes: usize,
    /// Height in edges.
    pub height: usize,
    /// Number of leaves.
    pub leaves: usize,
    /// Maximum number of children of any node.
    pub max_fanout: usize,
    /// Number of distinct labels.
    pub distinct_labels: usize,
}

/// Computes [`TreeStats`] for a tree.
pub fn stats(tree: &DataTree) -> TreeStats {
    let mut nodes = 0;
    let mut leaves = 0;
    let mut max_fanout = 0;
    let mut labels: HashMap<&str, usize> = HashMap::new();
    for node in tree.iter() {
        nodes += 1;
        let fanout = tree.children(node).len();
        if fanout == 0 {
            leaves += 1;
        }
        max_fanout = max_fanout.max(fanout);
        *labels.entry(tree.label(node)).or_insert(0) += 1;
    }
    TreeStats {
        nodes,
        height: tree.height(),
        leaves,
        max_fanout,
        distinct_labels: labels.len(),
    }
}

/// Histogram of node labels.
pub fn label_histogram(tree: &DataTree) -> HashMap<String, usize> {
    let mut hist = HashMap::new();
    for node in tree.iter() {
        *hist.entry(tree.label(node).to_string()).or_insert(0) += 1;
    }
    hist
}

/// Number `a_n` of rooted unordered **unlabeled** trees with exactly `n`
/// nodes, for `n = 0..=max_n` (`a_0 = 0`, `a_1 = 1`, `a_2 = 1`, `a_3 = 2`,
/// `a_4 = 4`, `a_5 = 9`, ... — OEIS A000081). Saturates at `u128::MAX` if
/// the value overflows (n ≳ 90).
///
/// The recurrence is
/// `a_{n+1} = (1/n) · Σ_{k=1..n} ( Σ_{d | k} d·a_d ) · a_{n-k+1}`.
#[allow(clippy::needless_range_loop)] // the divisor-sum recurrence reads more clearly with indices
pub fn rooted_tree_counts(max_n: usize) -> Vec<u128> {
    let mut a = vec![0u128; max_n + 1];
    if max_n >= 1 {
        a[1] = 1;
    }
    for n in 1..max_n {
        // Compute a[n+1].
        let mut total: u128 = 0;
        for k in 1..=n {
            // s(k) = sum over divisors d of k of d * a_d
            let mut s: u128 = 0;
            for d in 1..=k {
                if k % d == 0 {
                    s = s.saturating_add((d as u128).saturating_mul(a[d]));
                }
            }
            total = total.saturating_add(s.saturating_mul(a[n - k + 1]));
        }
        a[n + 1] = total / (n as u128);
    }
    a
}

/// Number of rooted unordered unlabeled trees with **at most** `n` nodes:
/// `Σ_{i=1..n} a_i` (saturating).
pub fn rooted_tree_counts_cumulative(max_n: usize) -> Vec<u128> {
    let a = rooted_tree_counts(max_n);
    let mut cum = vec![0u128; max_n + 1];
    for i in 1..=max_n {
        cum[i] = cum[i - 1].saturating_add(a[i]);
    }
    cum
}

/// Lower bound, in bits, on the average representation size of a
/// normalized possible-world set whose worlds have at most `n` nodes
/// (Proposition 1): the number of *sets* of such trees is at least
/// `2^{Σ a_i}`, so identifying one on average needs at least `Σ a_i` bits.
/// Returned as `Σ_{i=1..n} a_i`, saturating.
pub fn proposition1_bit_lower_bound(n: usize) -> u128 {
    *rooted_tree_counts_cumulative(n).last().unwrap_or(&0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{complete, star, TreeSpec};

    #[test]
    fn stats_of_star() {
        let t = star("A", "C", 4);
        let s = stats(&t);
        assert_eq!(
            s,
            TreeStats {
                nodes: 5,
                height: 1,
                leaves: 4,
                max_fanout: 4,
                distinct_labels: 2
            }
        );
    }

    #[test]
    fn stats_of_complete_binary_tree() {
        let t = complete("X", 2, 3);
        let s = stats(&t);
        assert_eq!(s.nodes, 15);
        assert_eq!(s.leaves, 8);
        assert_eq!(s.height, 3);
        assert_eq!(s.distinct_labels, 1);
    }

    #[test]
    fn label_histogram_counts_duplicates() {
        let t = TreeSpec::node(
            "A",
            vec![
                TreeSpec::leaf("B"),
                TreeSpec::leaf("B"),
                TreeSpec::leaf("C"),
            ],
        )
        .build();
        let h = label_histogram(&t);
        assert_eq!(h["A"], 1);
        assert_eq!(h["B"], 2);
        assert_eq!(h["C"], 1);
    }

    #[test]
    fn rooted_tree_counts_match_oeis_a000081() {
        // 0, 1, 1, 2, 4, 9, 20, 48, 115, 286, 719
        let a = rooted_tree_counts(10);
        assert_eq!(a, vec![0, 1, 1, 2, 4, 9, 20, 48, 115, 286, 719]);
    }

    #[test]
    fn cumulative_counts_are_monotone_and_correct() {
        let cum = rooted_tree_counts_cumulative(6);
        assert_eq!(cum, vec![0, 1, 2, 4, 8, 17, 37]);
        for w in cum.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn proposition1_bound_grows_exponentially() {
        let b8 = proposition1_bit_lower_bound(8);
        let b12 = proposition1_bit_lower_bound(12);
        let b16 = proposition1_bit_lower_bound(16);
        assert!(b12 > 4 * b8, "bound should grow faster than polynomially");
        assert!(b16 > 4 * b12);
    }

    #[test]
    fn rooted_tree_counts_handles_small_inputs() {
        assert_eq!(rooted_tree_counts(0), vec![0]);
        assert_eq!(rooted_tree_counts(1), vec![0, 1]);
    }
}
