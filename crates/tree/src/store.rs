//! Hash-consed storage of annotated subtree shapes.
//!
//! A [`NodeStore`] interns immutable *shapes*: a shape is a label, an
//! optional annotation (generic `A` — prob-trees use node conditions), and
//! an ordered list of child shapes. Interning is **syntactic**: two shapes
//! receive the same [`ShapeId`] iff they have equal labels, equal
//! annotations and identical child-id lists (child order preserved, so a
//! shape expands back to exactly the tree it was built from). On top of
//! the syntactic ids the store maintains order-insensitive **canonical
//! codes** (the Aho–Hopcroft–Ullman scheme of [`crate::canon`], extended
//! with annotations): two shapes share a canonical code iff their
//! expansions are isomorphic as annotated unordered trees.
//!
//! Shapes form a DAG by construction — a child id is always strictly
//! smaller than its parent's id — so equal subtrees are stored once no
//! matter how many trees or occurrences reference them. Reference counts
//! track both internal references (each stored parent retains its
//! children once per occurrence) and external handles
//! ([`NodeStore::retain`] / [`NodeStore::release`]); releasing the last
//! reference removes the shape from the interner so its storage can be
//! reclaimed by a compacting rebuild (`ProbTree::compact` upstream).
//!
//! The root of a stored shape conventionally carries **no** annotation
//! (`ann = None`): occurrence-specific data (a copy's root condition)
//! lives on the external handle, which is what lets many occurrences with
//! different root annotations share one stored subtree.

use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;

use crate::arena::{DataTree, NodeId};
use crate::canon::AnnotatedCanonInterner;

/// Identifier of a shape inside one [`NodeStore`].
///
/// Like [`NodeId`], a `ShapeId` is only meaningful for the store that
/// produced it. Child ids are always strictly smaller than their parent's
/// id, so the stored graph is acyclic by construction.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ShapeId(u32);

impl ShapeId {
    /// Raw index of the shape in the store.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ShapeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

#[derive(Clone, Debug)]
struct StoredNode<A> {
    label: String,
    ann: Option<A>,
    children: Vec<ShapeId>,
    /// Logical nodes of the expansion, including this node.
    size: usize,
    /// Annotation weight of this node alone (as supplied at intern time).
    own_weight: usize,
    /// Total annotation weight of the expansion, including this node.
    weight: usize,
    /// Order-insensitive canonical code (shared with isomorphic shapes).
    canon: u32,
    /// Internal (parent-shape) plus external (handle) references.
    refcount: u32,
    /// `false` once released; dead shapes are interner-unreachable.
    live: bool,
}

/// A hash-consing store of annotated subtree shapes; see the module docs.
#[derive(Clone, Debug)]
pub struct NodeStore<A> {
    nodes: Vec<StoredNode<A>>,
    interner: HashMap<(String, Option<A>, Vec<ShapeId>), ShapeId>,
    canon: AnnotatedCanonInterner<A>,
    live: usize,
}

impl<A: Clone + Eq + Hash> Default for NodeStore<A> {
    fn default() -> Self {
        Self::new()
    }
}

impl<A: Clone + Eq + Hash> NodeStore<A> {
    /// Creates an empty store.
    pub fn new() -> Self {
        NodeStore {
            nodes: Vec::new(),
            interner: HashMap::new(),
            canon: AnnotatedCanonInterner::new(),
            live: 0,
        }
    }

    /// Re-interns `shape` with a different root annotation, reusing its
    /// label and children. Converts between *bare* shapes (`ann = None`,
    /// occurrence data on the handle) and *full* shapes (`ann = Some(..)`).
    pub fn with_ann(&mut self, shape: ShapeId, ann: Option<A>, ann_weight: usize) -> ShapeId {
        let label = self.nodes[shape.index()].label.clone();
        let children = self.nodes[shape.index()].children.clone();
        self.intern(&label, ann, ann_weight, &children)
    }

    /// Interns the subtree of `tree` rooted at `node`, bottom-up. The
    /// annotation of every copied node (the root included) is produced by
    /// `ann_of`, which returns the annotation and its weight.
    pub fn intern_tree(
        &mut self,
        tree: &DataTree,
        node: NodeId,
        ann_of: &mut dyn FnMut(NodeId) -> (Option<A>, usize),
    ) -> ShapeId {
        // Post-order via an explicit stack: the second visit of a node pops
        // its children's shape ids off the result stack.
        let mut stack = vec![(node, false)];
        let mut results: Vec<ShapeId> = Vec::new();
        while let Some((n, expanded)) = stack.pop() {
            if expanded {
                let arity = tree.children(n).len();
                let children: Vec<ShapeId> = results.split_off(results.len() - arity);
                let (ann, weight) = ann_of(n);
                let id = self.intern(tree.label(n), ann, weight, &children);
                results.push(id);
            } else {
                stack.push((n, true));
                // Push children in reverse so they are *interned* in
                // original order (stored child order is significant for
                // syntactic ids, even though canon codes ignore it).
                for &child in tree.children(n).iter().rev() {
                    stack.push((child, false));
                }
            }
        }
        results
            .pop()
            .expect("intern_tree always produces a root shape")
    }

    /// Interns a shape, returning the id shared by every equal shape.
    ///
    /// `ann_weight` is the annotation's contribution to the shape's
    /// [`NodeStore::weight`] (prob-trees pass the literal count); it must
    /// be the same every time an equal annotation is interned. New shapes
    /// retain each child once per occurrence; an interner hit retains
    /// nothing.
    ///
    /// # Panics
    /// Panics if a child id is dead or out of bounds.
    pub fn intern(
        &mut self,
        label: &str,
        ann: Option<A>,
        ann_weight: usize,
        children: &[ShapeId],
    ) -> ShapeId {
        let key = (label.to_string(), ann, children.to_vec());
        if let Some(&id) = self.interner.get(&key) {
            return id;
        }
        let mut size = 1usize;
        let mut weight = ann_weight;
        let mut child_canons = Vec::with_capacity(children.len());
        for &child in children {
            let node = &self.nodes[child.index()];
            assert!(node.live, "interning a shape over a released child");
            size += node.size;
            weight += node.weight;
            child_canons.push(node.canon);
        }
        let canon = self.canon.intern(label, key.1.as_ref(), child_canons);
        for &child in children {
            self.nodes[child.index()].refcount += 1;
        }
        let id = ShapeId(self.nodes.len() as u32);
        self.nodes.push(StoredNode {
            label: key.0.clone(),
            ann: key.1.clone(),
            children: key.2.clone(),
            size,
            own_weight: ann_weight,
            weight,
            canon,
            refcount: 0,
            live: true,
        });
        self.interner.insert(key, id);
        self.live += 1;
        id
    }

    /// Registers one external reference to `shape`.
    pub fn retain(&mut self, shape: ShapeId) {
        let node = &mut self.nodes[shape.index()];
        assert!(node.live, "retaining a released shape");
        node.refcount += 1;
    }

    /// Drops one reference to `shape`. When the last reference goes, the
    /// shape dies: it leaves the interner (a later equal intern builds a
    /// fresh shape) and recursively releases its children.
    pub fn release(&mut self, shape: ShapeId) {
        let mut stack = vec![shape];
        while let Some(id) = stack.pop() {
            let node = &mut self.nodes[id.index()];
            assert!(node.live, "releasing a dead shape");
            assert!(node.refcount > 0, "releasing an unreferenced shape");
            node.refcount -= 1;
            if node.refcount == 0 {
                node.live = false;
                self.live -= 1;
                let key = (node.label.clone(), node.ann.clone(), node.children.clone());
                stack.extend(node.children.iter().copied());
                self.interner.remove(&key);
            }
        }
    }

    /// The label of a shape's root.
    #[inline]
    pub fn label(&self, shape: ShapeId) -> &str {
        &self.nodes[shape.index()].label
    }

    /// The annotation of a shape's root (`None` for bare roots, whose
    /// occurrence data lives on the external handle).
    #[inline]
    pub fn ann(&self, shape: ShapeId) -> Option<&A> {
        self.nodes[shape.index()].ann.as_ref()
    }

    /// The child shapes, in stored (expansion) order.
    #[inline]
    pub fn children(&self, shape: ShapeId) -> &[ShapeId] {
        &self.nodes[shape.index()].children
    }

    /// Logical nodes of the shape's expansion, including the root.
    #[inline]
    pub fn size(&self, shape: ShapeId) -> usize {
        self.nodes[shape.index()].size
    }

    /// Total annotation weight of the shape's expansion.
    #[inline]
    pub fn weight(&self, shape: ShapeId) -> usize {
        self.nodes[shape.index()].weight
    }

    /// Order-insensitive canonical code: equal iff the expansions are
    /// isomorphic as annotated unordered trees (within this store).
    #[inline]
    pub fn canon_code(&self, shape: ShapeId) -> u32 {
        self.nodes[shape.index()].canon
    }

    /// Current reference count (internal + external).
    #[inline]
    pub fn refcount(&self, shape: ShapeId) -> u32 {
        self.nodes[shape.index()].refcount
    }

    /// Whether the shape is still referenced (or was interned and never
    /// referenced — scratch shapes stay live at refcount 0).
    #[inline]
    pub fn is_live(&self, shape: ShapeId) -> bool {
        self.nodes[shape.index()].live
    }

    /// Number of live shapes (each a distinct stored node).
    pub fn num_live(&self) -> usize {
        self.live
    }

    /// Total shapes ever interned, dead ones included.
    pub fn num_interned(&self) -> usize {
        self.nodes.len()
    }

    /// Collects the set of shapes reachable from `roots` (inclusive),
    /// each counted once — the *distinct stored nodes* backing those
    /// expansions.
    pub fn reachable_from<I: IntoIterator<Item = ShapeId>>(
        &self,
        roots: I,
    ) -> std::collections::BTreeSet<ShapeId> {
        let mut seen = std::collections::BTreeSet::new();
        let mut stack: Vec<ShapeId> = roots.into_iter().collect();
        while let Some(id) = stack.pop() {
            if seen.insert(id) {
                stack.extend(self.children(id).iter().copied());
            }
        }
        seen
    }

    /// Expands a shape into an independent [`DataTree`] (labels only; use
    /// [`DataTree::graft_shape`] to expand into an existing tree with
    /// annotation delivery).
    pub fn shape_to_tree(&self, shape: ShapeId) -> DataTree {
        let mut out = DataTree::new(self.label(shape));
        let root = out.root();
        out.graft_shape_children(self, shape, root, &mut |_, _| {});
        out
    }

    /// Validates the store's representation invariants, given the
    /// external reference count per shape (handles held by callers):
    ///
    /// * **acyclicity** — every child id is strictly smaller than its
    ///   parent's;
    /// * **liveness** — live shapes only reference live children;
    /// * **cached aggregates** — `size` and `weight` match a recomputation
    ///   over the children;
    /// * **interner agreement** — the interner maps exactly the live
    ///   shapes, each under its own key;
    /// * **canonical-form agreement** — re-canonizing every live shape
    ///   from scratch partitions them exactly as the cached codes do;
    /// * **refcount consistency** — every live shape's count equals its
    ///   occurrences as a child of live shapes plus its external count.
    pub fn validate(&self, external: &HashMap<ShapeId, usize>) -> Result<(), String> {
        let mut expected: HashMap<ShapeId, usize> = external.clone();
        for (i, node) in self.nodes.iter().enumerate() {
            if !node.live {
                continue;
            }
            let id = ShapeId(i as u32);
            let mut size = 1usize;
            let mut weight = node.own_weight;
            for &child in &node.children {
                if child.index() >= i {
                    return Err(format!("store cycle: {id} references {child}"));
                }
                let c = &self.nodes[child.index()];
                if !c.live {
                    return Err(format!("live shape {id} references dead child {child}"));
                }
                size += c.size;
                weight += c.weight;
                *expected.entry(child).or_insert(0) += 1;
            }
            if size != node.size || weight != node.weight {
                return Err(format!(
                    "stale aggregates on {id}: cached ({}, {}) vs recomputed ({size}, {weight})",
                    node.size, node.weight
                ));
            }
            let key = (node.label.clone(), node.ann.clone(), node.children.clone());
            if self.interner.get(&key) != Some(&id) {
                return Err(format!("interner does not map {id}'s key back to it"));
            }
        }
        if self.interner.len() != self.live {
            return Err(format!(
                "interner holds {} entries for {} live shapes",
                self.interner.len(),
                self.live
            ));
        }
        // Canonical agreement: recompute codes bottom-up (ascending ids
        // visit children first) and demand the same partition.
        let mut fresh = AnnotatedCanonInterner::new();
        let mut recomputed: HashMap<ShapeId, u32> = HashMap::new();
        let mut old_to_new: HashMap<u32, u32> = HashMap::new();
        let mut new_to_old: HashMap<u32, u32> = HashMap::new();
        for (i, node) in self.nodes.iter().enumerate() {
            if !node.live {
                continue;
            }
            let id = ShapeId(i as u32);
            let child_codes: Vec<u32> = node.children.iter().map(|c| recomputed[c]).collect();
            let code = fresh.intern(&node.label, node.ann.as_ref(), child_codes);
            recomputed.insert(id, code);
            let forward = *old_to_new.entry(node.canon).or_insert(code);
            let backward = *new_to_old.entry(code).or_insert(node.canon);
            if forward != code || backward != node.canon {
                return Err(format!(
                    "canonical codes disagree with a fresh canonization at {id}"
                ));
            }
        }
        for (i, node) in self.nodes.iter().enumerate() {
            if !node.live {
                continue;
            }
            let id = ShapeId(i as u32);
            let want = expected.get(&id).copied().unwrap_or(0);
            if node.refcount as usize != want {
                return Err(format!(
                    "refcount of {id} is {} but {} references exist",
                    node.refcount, want
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canon::{canonical_string, Semantics};

    fn no_refs() -> HashMap<ShapeId, usize> {
        HashMap::new()
    }

    #[test]
    fn equal_shapes_intern_once() {
        let mut store: NodeStore<u8> = NodeStore::new();
        let leaf = store.intern("B", Some(1), 1, &[]);
        let leaf2 = store.intern("B", Some(1), 1, &[]);
        assert_eq!(leaf, leaf2);
        let parent = store.intern("A", None, 0, &[leaf, leaf]);
        assert_eq!(store.size(parent), 3);
        assert_eq!(store.weight(parent), 2);
        assert_eq!(store.num_live(), 2);
        assert_eq!(store.refcount(leaf), 2, "retained once per occurrence");
        store.validate(&no_refs()).unwrap();
    }

    #[test]
    fn annotations_distinguish_shapes_but_not_bare_roots() {
        let mut store: NodeStore<u8> = NodeStore::new();
        let a = store.intern("B", Some(1), 1, &[]);
        let b = store.intern("B", Some(2), 1, &[]);
        let bare = store.intern("B", None, 0, &[]);
        assert_ne!(a, b);
        assert_ne!(a, bare);
        store.validate(&no_refs()).unwrap();
    }

    #[test]
    fn canon_codes_ignore_child_order() {
        let mut store: NodeStore<u8> = NodeStore::new();
        let b = store.intern("B", Some(1), 1, &[]);
        let c = store.intern("C", Some(2), 1, &[]);
        let bc = store.intern("A", None, 0, &[b, c]);
        let cb = store.intern("A", None, 0, &[c, b]);
        assert_ne!(bc, cb, "syntactic ids preserve order");
        assert_eq!(store.canon_code(bc), store.canon_code(cb));
        assert_eq!(
            canonical_string(&store.shape_to_tree(bc), Semantics::MultiSet),
            canonical_string(&store.shape_to_tree(cb), Semantics::MultiSet)
        );
        store.validate(&no_refs()).unwrap();
    }

    #[test]
    fn release_cascades_and_reclaims_interner_entries() {
        let mut store: NodeStore<u8> = NodeStore::new();
        let leaf = store.intern("B", Some(1), 1, &[]);
        let parent = store.intern("A", None, 0, &[leaf]);
        store.retain(parent);
        assert_eq!(store.num_live(), 2);
        store.release(parent);
        assert_eq!(store.num_live(), 0);
        assert!(!store.is_live(parent));
        assert!(!store.is_live(leaf));
        // A fresh intern of the same key builds a new, larger id.
        let again = store.intern("B", Some(1), 1, &[]);
        assert!(again > leaf);
        store.validate(&no_refs()).unwrap();
    }

    #[test]
    fn shared_children_survive_a_sibling_release() {
        let mut store: NodeStore<u8> = NodeStore::new();
        let leaf = store.intern("B", Some(1), 1, &[]);
        let p1 = store.intern("A", None, 0, &[leaf]);
        let p2 = store.intern("A", Some(9), 2, &[leaf]);
        store.retain(p1);
        store.retain(p2);
        store.release(p1);
        assert!(!store.is_live(p1));
        assert!(store.is_live(leaf), "still referenced by p2");
        let mut external = HashMap::new();
        external.insert(p2, 1usize);
        store.validate(&external).unwrap();
    }

    #[test]
    fn reachable_counts_distinct_nodes_once() {
        let mut store: NodeStore<u8> = NodeStore::new();
        let leaf = store.intern("B", Some(1), 1, &[]);
        let mid = store.intern("M", Some(2), 1, &[leaf, leaf]);
        let top = store.intern("A", None, 0, &[mid, mid]);
        let reachable = store.reachable_from([top]);
        assert_eq!(reachable.len(), 3, "leaf, mid, top — each once");
        assert_eq!(store.size(top), 7, "logical expansion: 1 + 2·(1 + 2)");
    }

    #[test]
    fn validate_reports_refcount_drift() {
        let mut store: NodeStore<u8> = NodeStore::new();
        let leaf = store.intern("B", Some(1), 1, &[]);
        let mut external = HashMap::new();
        external.insert(leaf, 3usize); // claim refs that were never taken
        let err = store.validate(&external).unwrap_err();
        assert!(err.contains("refcount"), "{err}");
    }
}
