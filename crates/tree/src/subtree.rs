//! Sub-datatrees (Definition 5 of the paper).
//!
//! A *sub-datatree* `t' ≤ t` keeps the root of `t` and is closed under
//! parents: whenever a node is kept, so is its parent. The paper's locally
//! monotone queries return sets of sub-datatrees; representing them as node
//! subsets of the original tree (rather than as freshly-built trees) keeps
//! the correspondence needed to collect node conditions during prob-tree
//! query evaluation (Definition 8) and to anchor updates (Appendix A).

use std::collections::BTreeSet;

use crate::arena::{DataTree, NodeId};
use crate::canon::{canonical_string, Semantics};

/// A sub-datatree of a specific [`DataTree`], represented as the set of
/// kept node ids (always containing the root, closed under parents).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct SubDataTree {
    nodes: BTreeSet<NodeId>,
}

impl SubDataTree {
    /// The sub-datatree consisting of the root only.
    pub fn root_only(tree: &DataTree) -> Self {
        let mut nodes = BTreeSet::new();
        nodes.insert(tree.root());
        SubDataTree { nodes }
    }

    /// The full tree, viewed as a sub-datatree of itself.
    pub fn full(tree: &DataTree) -> Self {
        SubDataTree {
            nodes: tree.iter().collect(),
        }
    }

    /// Builds a sub-datatree from an arbitrary set of nodes by closing it
    /// under parents (and adding the root).
    pub fn from_nodes<I: IntoIterator<Item = NodeId>>(tree: &DataTree, nodes: I) -> Self {
        let mut set = BTreeSet::new();
        set.insert(tree.root());
        for node in nodes {
            let mut cur = Some(node);
            while let Some(n) = cur {
                if !set.insert(n) {
                    break;
                }
                cur = tree.parent(n);
            }
        }
        SubDataTree { nodes: set }
    }

    /// The kept nodes.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().copied()
    }

    /// Number of kept nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// A sub-datatree always contains the root.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether `node` is kept.
    pub fn contains(&self, node: NodeId) -> bool {
        self.nodes.contains(&node)
    }

    /// Set-union of two sub-datatrees of the same tree (still a
    /// sub-datatree, since parent-closure is preserved by union).
    pub fn union(&self, other: &SubDataTree) -> SubDataTree {
        SubDataTree {
            nodes: self.nodes.union(&other.nodes).copied().collect(),
        }
    }

    /// Set-intersection of two sub-datatrees of the same tree. The
    /// intersection of two parent-closed sets containing the root is again
    /// parent-closed and contains the root.
    pub fn intersection(&self, other: &SubDataTree) -> SubDataTree {
        SubDataTree {
            nodes: self.nodes.intersection(&other.nodes).copied().collect(),
        }
    }

    /// The sub-datatree partial order `self ≤ other` (both over the same
    /// underlying tree).
    pub fn le(&self, other: &SubDataTree) -> bool {
        self.nodes.is_subset(&other.nodes)
    }

    /// Materializes this sub-datatree as an independent [`DataTree`].
    pub fn to_tree(&self, tree: &DataTree) -> DataTree {
        let nodes = self.nodes.clone();
        let (out, _) = tree.extract(&move |n| nodes.contains(&n));
        out
    }

    /// Canonical string of the induced tree (used to deduplicate
    /// isomorphic query answers).
    pub fn canonical_string(&self, tree: &DataTree, semantics: Semantics) -> String {
        canonical_string(&self.to_tree(tree), semantics)
    }
}

/// Checks whether the *independent* tree `small` is (isomorphic to) a
/// sub-datatree of `big`, i.e. whether `small ≤ big` in the sense of
/// Definition 5 up to isomorphism. Exponential in the worst case; intended
/// for tests on small trees (e.g. verifying local monotonicity).
pub fn is_subdatatree_of(small: &DataTree, big: &DataTree, semantics: Semantics) -> bool {
    enumerate_subdatatrees(big)
        .iter()
        .any(|sub| crate::canon::isomorphic(&sub.to_tree(big), small, semantics))
}

/// Enumerates **all** sub-datatrees of `tree` (the set `Sub(t)` of
/// Definition 5). The number of sub-datatrees is exponential in the tree
/// size; this is a test/verification helper for small trees only.
pub fn enumerate_subdatatrees(tree: &DataTree) -> Vec<SubDataTree> {
    // For each node (in pre-order), we either exclude its entire subtree or
    // include the node and recurse on its children independently.
    fn rec(tree: &DataTree, node: NodeId) -> Vec<BTreeSet<NodeId>> {
        // All ways to pick a parent-closed subset of the subtree rooted at
        // `node` *that contains `node`*.
        let mut options: Vec<BTreeSet<NodeId>> = vec![BTreeSet::from([node])];
        for &child in tree.children(node) {
            let child_options = rec(tree, child);
            let mut next = Vec::new();
            for base in &options {
                // Exclude the child subtree entirely.
                next.push(base.clone());
                // Or include one of the child's own options.
                for co in &child_options {
                    let mut merged = base.clone();
                    merged.extend(co.iter().copied());
                    next.push(merged);
                }
            }
            options = next;
        }
        options
    }
    rec(tree, tree.root())
        .into_iter()
        .map(|nodes| SubDataTree { nodes })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TreeSpec;

    fn sample() -> DataTree {
        // A
        // ├── B
        // └── C
        //     └── D
        TreeSpec::node(
            "A",
            vec![
                TreeSpec::leaf("B"),
                TreeSpec::node("C", vec![TreeSpec::leaf("D")]),
            ],
        )
        .build()
    }

    fn node_by_label(tree: &DataTree, label: &str) -> NodeId {
        tree.iter().find(|&n| tree.label(n) == label).unwrap()
    }

    #[test]
    fn from_nodes_closes_under_parents() {
        let tree = sample();
        let d = node_by_label(&tree, "D");
        let sub = SubDataTree::from_nodes(&tree, [d]);
        // D forces C and the root A.
        assert_eq!(sub.len(), 3);
        assert!(sub.contains(node_by_label(&tree, "C")));
        assert!(sub.contains(tree.root()));
        assert!(!sub.contains(node_by_label(&tree, "B")));
    }

    #[test]
    fn root_only_and_full() {
        let tree = sample();
        assert_eq!(SubDataTree::root_only(&tree).len(), 1);
        assert_eq!(SubDataTree::full(&tree).len(), 4);
        assert!(SubDataTree::root_only(&tree).le(&SubDataTree::full(&tree)));
    }

    #[test]
    fn union_and_intersection_preserve_structure() {
        let tree = sample();
        let b = node_by_label(&tree, "B");
        let d = node_by_label(&tree, "D");
        let sb = SubDataTree::from_nodes(&tree, [b]);
        let sd = SubDataTree::from_nodes(&tree, [d]);
        let u = sb.union(&sd);
        assert_eq!(u.len(), 4);
        let i = sb.intersection(&sd);
        assert_eq!(i.len(), 1); // just the root
        assert!(i.contains(tree.root()));
    }

    #[test]
    fn to_tree_extracts_the_induced_tree() {
        let tree = sample();
        let d = node_by_label(&tree, "D");
        let sub = SubDataTree::from_nodes(&tree, [d]);
        let t = sub.to_tree(&tree);
        assert_eq!(t.len(), 3);
        assert_eq!(t.label(t.root()), "A");
    }

    #[test]
    fn enumeration_counts_match_hand_computation() {
        // For the sample tree: choices are {include B or not} x {exclude C,
        // include C alone, include C and D} = 2 * 3 = 6 sub-datatrees.
        let tree = sample();
        let subs = enumerate_subdatatrees(&tree);
        assert_eq!(subs.len(), 6);
        // All contain the root and are parent-closed.
        for sub in &subs {
            assert!(sub.contains(tree.root()));
            for n in sub.nodes() {
                if let Some(p) = tree.parent(n) {
                    assert!(sub.contains(p));
                }
            }
        }
    }

    #[test]
    fn subdatatree_relation_between_independent_trees() {
        let big = sample();
        let small = TreeSpec::node("A", vec![TreeSpec::leaf("C")]).build();
        let not_sub = TreeSpec::node("A", vec![TreeSpec::leaf("D")]).build();
        assert!(is_subdatatree_of(&small, &big, Semantics::MultiSet));
        // D is not a child of the root in `big`, so A→D is not a
        // sub-datatree (sub-datatrees never "shortcut" edges).
        assert!(!is_subdatatree_of(&not_sub, &big, Semantics::MultiSet));
    }

    #[test]
    fn le_is_a_partial_order_on_samples() {
        let tree = sample();
        let subs = enumerate_subdatatrees(&tree);
        for a in &subs {
            assert!(a.le(a), "reflexive");
            for b in &subs {
                if a.le(b) && b.le(a) {
                    assert_eq!(a, b, "antisymmetric");
                }
                for c in &subs {
                    if a.le(b) && b.le(c) {
                        assert!(a.le(c), "transitive");
                    }
                }
            }
        }
    }
}
