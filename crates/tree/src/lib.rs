//! # pxml-tree — unordered labeled data trees
//!
//! This crate implements the *data tree* model of Senellart & Abiteboul,
//! "On the Complexity of Managing Probabilistic XML Data" (PODS 2007),
//! Definition 1: a data tree is a finite set of nodes arranged as a rooted
//! tree, each node carrying a label drawn from a countable set (character
//! strings here). The model is **unordered** (children form a multiset) and
//! deliberately ignores XML ordering, attributes, and the text/element
//! distinction.
//!
//! Provided here:
//!
//! * [`DataTree`]: an arena-backed rooted tree with cheap cloning and
//!   index-based node access ([`NodeId`]).
//! * [`canon`]: linear-time isomorphism of unordered labeled trees via
//!   Aho–Hopcroft–Ullman canonical codes, under both the paper's default
//!   **multiset** semantics and the Section 5 **set** semantics.
//! * [`subtree`]: *sub-datatrees* (Definition 5) — root-preserving,
//!   parent-closed node subsets — which are the result form of the paper's
//!   locally monotone queries.
//! * [`builder`]: a declarative way to construct trees in tests and
//!   examples.
//! * [`render`]: human-readable and DOT rendering.
//! * [`stats`]: size/shape statistics and the counting sequence of rooted
//!   unordered trees used by Proposition 1.
//! * [`store`]: a hash-consed [`NodeStore`] of annotated subtree shapes —
//!   the DAG backing that lets equal subtrees be physically shared across
//!   copies and documents ([`DataTree::graft_shape`] expands a stored
//!   shape back into an arena).
//!
//! ```
//! use pxml_tree::{DataTree, canon::{isomorphic, Semantics}};
//!
//! // The Figure 2 world with root A and children B, C.
//! let mut t = DataTree::new("A");
//! let root = t.root();
//! t.add_child(root, "B");
//! t.add_child(root, "C");
//!
//! // Order of insertion does not matter for isomorphism.
//! let mut u = DataTree::new("A");
//! let r = u.root();
//! u.add_child(r, "C");
//! u.add_child(r, "B");
//! assert!(isomorphic(&t, &u, Semantics::MultiSet));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arena;
pub mod builder;
pub mod canon;
pub mod render;
pub mod stats;
pub mod store;
pub mod subtree;

pub use arena::{DataTree, NodeId};
pub use builder::TreeSpec;
pub use canon::{canonical_string, isomorphic, AnnotatedCanonInterner, Semantics};
pub use store::{NodeStore, ShapeId};
pub use subtree::SubDataTree;
