//! Human-readable rendering of data trees.
//!
//! Two output formats are provided: an indented ASCII outline (used by the
//! examples and by `Display`-style debugging) and Graphviz DOT (useful to
//! visualize the paper's constructions).

use std::fmt::Write as _;

use crate::arena::{DataTree, NodeId};

/// Renders `tree` as an indented ASCII outline, e.g.:
///
/// ```text
/// A
/// ├── B
/// └── C
///     └── D
/// ```
pub fn to_ascii(tree: &DataTree) -> String {
    /// `annotate` lets callers (e.g. the prob-tree renderer) append
    /// per-node decorations; the plain version passes an empty annotation.
    fn rec(
        tree: &DataTree,
        node: NodeId,
        prefix: &str,
        is_last: bool,
        is_root: bool,
        out: &mut String,
        annotate: &dyn Fn(NodeId) -> String,
    ) {
        if is_root {
            let _ = writeln!(out, "{}{}", tree.label(node), annotate(node));
        } else {
            let branch = if is_last { "└── " } else { "├── " };
            let _ = writeln!(
                out,
                "{prefix}{branch}{}{}",
                tree.label(node),
                annotate(node)
            );
        }
        let children = tree.children(node);
        for (i, &child) in children.iter().enumerate() {
            let last = i + 1 == children.len();
            let child_prefix = if is_root {
                String::new()
            } else if is_last {
                format!("{prefix}    ")
            } else {
                format!("{prefix}│   ")
            };
            rec(tree, child, &child_prefix, last, false, out, annotate);
        }
    }
    let mut out = String::new();
    rec(tree, tree.root(), "", true, true, &mut out, &|_| {
        String::new()
    });
    out
}

/// Renders `tree` as an indented ASCII outline with a caller-supplied
/// per-node annotation (the prob-tree renderer uses this to show
/// conditions).
pub fn to_ascii_annotated(tree: &DataTree, annotate: &dyn Fn(NodeId) -> String) -> String {
    fn rec(
        tree: &DataTree,
        node: NodeId,
        prefix: &str,
        is_last: bool,
        is_root: bool,
        out: &mut String,
        annotate: &dyn Fn(NodeId) -> String,
    ) {
        if is_root {
            let _ = writeln!(out, "{}{}", tree.label(node), annotate(node));
        } else {
            let branch = if is_last { "└── " } else { "├── " };
            let _ = writeln!(
                out,
                "{prefix}{branch}{}{}",
                tree.label(node),
                annotate(node)
            );
        }
        let children = tree.children(node);
        for (i, &child) in children.iter().enumerate() {
            let last = i + 1 == children.len();
            let child_prefix = if is_root {
                String::new()
            } else if is_last {
                format!("{prefix}    ")
            } else {
                format!("{prefix}│   ")
            };
            rec(tree, child, &child_prefix, last, false, out, annotate);
        }
    }
    let mut out = String::new();
    rec(tree, tree.root(), "", true, true, &mut out, annotate);
    out
}

/// Renders `tree` in Graphviz DOT syntax.
pub fn to_dot(tree: &DataTree, graph_name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {} {{", sanitize_ident(graph_name));
    let _ = writeln!(out, "  node [shape=ellipse];");
    for node in tree.iter() {
        let _ = writeln!(
            out,
            "  {} [label=\"{}\"];",
            node.index(),
            escape_dot(tree.label(node))
        );
    }
    for node in tree.iter() {
        for &child in tree.children(node) {
            let _ = writeln!(out, "  {} -> {};", node.index(), child.index());
        }
    }
    out.push_str("}\n");
    out
}

fn sanitize_ident(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.is_empty() || cleaned.chars().next().unwrap().is_numeric() {
        format!("g_{cleaned}")
    } else {
        cleaned
    }
}

fn escape_dot(label: &str) -> String {
    label.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TreeSpec;

    fn sample() -> DataTree {
        TreeSpec::node(
            "A",
            vec![
                TreeSpec::leaf("B"),
                TreeSpec::node("C", vec![TreeSpec::leaf("D")]),
            ],
        )
        .build()
    }

    #[test]
    fn ascii_contains_every_label_once() {
        let text = to_ascii(&sample());
        for label in ["A", "B", "C", "D"] {
            assert_eq!(
                text.matches(label).count(),
                1,
                "label {label} in output:\n{text}"
            );
        }
        assert!(text.contains("└── C"));
    }

    #[test]
    fn annotated_ascii_appends_annotations() {
        let tree = sample();
        let text = to_ascii_annotated(&tree, &|n| {
            if tree.label(n) == "B" {
                "  [w1]".to_string()
            } else {
                String::new()
            }
        });
        assert!(text.contains("B  [w1]"));
        assert!(!text.contains("A  [w1]"));
    }

    #[test]
    fn dot_output_has_all_edges() {
        let tree = sample();
        let dot = to_dot(&tree, "sample");
        assert!(dot.starts_with("digraph sample {"));
        // 3 edges for 4 nodes.
        assert_eq!(dot.matches("->").count(), 3);
        assert!(dot.contains("label=\"D\""));
    }

    #[test]
    fn dot_escapes_quotes_and_sanitizes_name() {
        let mut tree = DataTree::new("say \"hi\"");
        let r = tree.root();
        tree.add_child(r, "x\\y");
        let dot = to_dot(&tree, "1 bad name");
        assert!(dot.contains("digraph g_1_bad_name"));
        assert!(dot.contains("say \\\"hi\\\""));
        assert!(dot.contains("x\\\\y"));
    }
}
