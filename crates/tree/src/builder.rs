//! Declarative construction of [`DataTree`]s.
//!
//! Building trees node-by-node is verbose in tests and examples. A
//! [`TreeSpec`] describes a tree as a nested literal value:
//!
//! ```
//! use pxml_tree::builder::TreeSpec;
//!
//! // A
//! // ├── B
//! // └── C
//! //     └── D
//! let tree = TreeSpec::node("A", vec![
//!     TreeSpec::leaf("B"),
//!     TreeSpec::node("C", vec![TreeSpec::leaf("D")]),
//! ]).build();
//! assert_eq!(tree.len(), 4);
//! ```

use crate::arena::{DataTree, NodeId};

/// A declarative description of an unordered labeled tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TreeSpec {
    /// Label of this node.
    pub label: String,
    /// Children specifications (a multiset; order is irrelevant).
    pub children: Vec<TreeSpec>,
}

impl TreeSpec {
    /// A node with the given label and children.
    pub fn node(label: impl Into<String>, children: Vec<TreeSpec>) -> Self {
        TreeSpec {
            label: label.into(),
            children,
        }
    }

    /// A leaf node.
    pub fn leaf(label: impl Into<String>) -> Self {
        TreeSpec {
            label: label.into(),
            children: Vec::new(),
        }
    }

    /// Materializes the specification into a [`DataTree`].
    pub fn build(&self) -> DataTree {
        let mut tree = DataTree::new(&self.label);
        let root = tree.root();
        for child in &self.children {
            child.attach_to(&mut tree, root);
        }
        tree
    }

    fn attach_to(&self, tree: &mut DataTree, parent: NodeId) {
        let id = tree.add_child(parent, &self.label);
        for child in &self.children {
            child.attach_to(tree, id);
        }
    }

    /// Number of nodes described by this specification.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(TreeSpec::size).sum::<usize>()
    }

    /// Reads a specification back from a [`DataTree`] (inverse of
    /// [`TreeSpec::build`] up to child order).
    pub fn from_tree(tree: &DataTree) -> Self {
        fn rec(tree: &DataTree, node: NodeId) -> TreeSpec {
            TreeSpec {
                label: tree.label(node).to_string(),
                children: tree.children(node).iter().map(|&c| rec(tree, c)).collect(),
            }
        }
        rec(tree, tree.root())
    }
}

/// Builds a chain `labels[0] / labels[1] / ... / labels[n-1]` where each
/// label is the single child of the previous one. Handy for path-shaped
/// fixtures.
pub fn chain(labels: &[&str]) -> DataTree {
    assert!(!labels.is_empty(), "chain requires at least one label");
    let mut tree = DataTree::new(labels[0]);
    let mut cur = tree.root();
    for label in &labels[1..] {
        cur = tree.add_child(cur, *label);
    }
    tree
}

/// Builds a "star": a root with `n` children all labeled `child_label`.
pub fn star(root_label: &str, child_label: &str, n: usize) -> DataTree {
    let mut tree = DataTree::new(root_label);
    let root = tree.root();
    for _ in 0..n {
        tree.add_child(root, child_label);
    }
    tree
}

/// Builds a complete `arity`-ary tree of the given `depth` (depth 0 is a
/// single root) where every node carries `label`.
pub fn complete(label: &str, arity: usize, depth: usize) -> DataTree {
    let mut tree = DataTree::new(label);
    let mut frontier = vec![tree.root()];
    for _ in 0..depth {
        let mut next = Vec::new();
        for node in frontier {
            for _ in 0..arity {
                next.push(tree.add_child(node, label));
            }
        }
        frontier = next;
    }
    tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canon::{isomorphic, Semantics};

    #[test]
    fn build_round_trips_through_from_tree() {
        let spec = TreeSpec::node(
            "A",
            vec![
                TreeSpec::leaf("B"),
                TreeSpec::node("C", vec![TreeSpec::leaf("D"), TreeSpec::leaf("D")]),
            ],
        );
        let tree = spec.build();
        assert_eq!(tree.len(), spec.size());
        let back = TreeSpec::from_tree(&tree);
        assert!(isomorphic(&back.build(), &tree, Semantics::MultiSet));
    }

    #[test]
    fn chain_builds_a_path() {
        let t = chain(&["A", "B", "C"]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.height(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one label")]
    fn chain_requires_nonempty() {
        chain(&[]);
    }

    #[test]
    fn star_has_n_children() {
        let t = star("A", "C", 5);
        assert_eq!(t.len(), 6);
        assert_eq!(t.children(t.root()).len(), 5);
        assert_eq!(t.height(), 1);
    }

    #[test]
    fn complete_tree_size() {
        // arity 2, depth 3: 1 + 2 + 4 + 8 = 15 nodes.
        let t = complete("X", 2, 3);
        assert_eq!(t.len(), 15);
        assert_eq!(t.height(), 3);
    }

    #[test]
    fn complete_depth_zero_is_root_only() {
        let t = complete("X", 3, 0);
        assert_eq!(t.len(), 1);
    }
}
