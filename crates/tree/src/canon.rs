//! Canonical forms and isomorphism of unordered labeled trees.
//!
//! The paper relies (proof of Theorem 2, citing Aho–Hopcroft–Ullman \[4\]) on
//! the classical linear-time canonization of rooted unordered trees: assign
//! integers to leaves by label, then bottom-up assign the same integer to two
//! nodes iff they have the same label and the same multiset of child
//! integers. Two trees are isomorphic (Definition 1's `∼`) iff their roots
//! receive the same integer.
//!
//! Two semantics are supported:
//!
//! * [`Semantics::MultiSet`] — the paper's default: a node with two `B`
//!   children is different from a node with one.
//! * [`Semantics::Set`] — the Section 5 variant: duplicate (isomorphic)
//!   children collapse.

use std::collections::HashMap;
use std::hash::Hash;

use crate::arena::{DataTree, NodeId};

/// Which notion of data-tree isomorphism to use.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Semantics {
    /// Multiset (bag) semantics — the paper's default (Section 2).
    #[default]
    MultiSet,
    /// Set semantics — the Section 5 variant where duplicate isomorphic
    /// siblings are indistinguishable.
    Set,
}

/// Interner that assigns canonical integer codes to (label, child-codes)
/// shapes shared across several trees. Comparing root codes obtained from
/// the *same* interner decides isomorphism.
#[derive(Default, Debug)]
pub struct CanonInterner {
    codes: HashMap<(String, Vec<u32>), u32>,
}

impl CanonInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct (label, child-code multiset) shapes seen so far.
    pub fn distinct_shapes(&self) -> usize {
        self.codes.len()
    }

    fn intern(&mut self, label: &str, mut child_codes: Vec<u32>, semantics: Semantics) -> u32 {
        child_codes.sort_unstable();
        if semantics == Semantics::Set {
            child_codes.dedup();
        }
        let next = self.codes.len() as u32;
        *self
            .codes
            .entry((label.to_string(), child_codes))
            .or_insert(next)
    }

    /// Computes canonical codes for every reachable node of `tree`,
    /// returning the per-node codes and the root code.
    pub fn canonize(&mut self, tree: &DataTree, semantics: Semantics) -> CanonCodes {
        // Process nodes children-first: reverse pre-order works because a
        // pre-order pushes parents before children, so the reverse visits
        // children before their parent.
        let order: Vec<NodeId> = tree.iter().collect();
        let mut codes: HashMap<NodeId, u32> = HashMap::with_capacity(order.len());
        for &node in order.iter().rev() {
            let child_codes: Vec<u32> = tree.children(node).iter().map(|c| codes[c]).collect();
            let code = self.intern(tree.label(node), child_codes, semantics);
            codes.insert(node, code);
        }
        let root_code = codes[&tree.root()];
        CanonCodes { codes, root_code }
    }
}

/// [`CanonInterner`] generalized to trees whose nodes carry an annotation
/// of type `A` alongside the label (prob-trees use node conditions; the
/// hash-consed [`crate::store::NodeStore`] uses this interner for its
/// order-insensitive canonical codes).
///
/// Two shapes receive the same code iff they have the same label, equal
/// annotations (`Option<A>` — `None` distinguishes "no annotation" from
/// any real one), and the same **multiset** of child codes: child order
/// never matters here, matching the unordered-tree semantics of
/// [`isomorphic`].
#[derive(Clone, Debug)]
pub struct AnnotatedCanonInterner<A> {
    codes: HashMap<(String, Option<A>, Vec<u32>), u32>,
}

impl<A: Clone + Eq + Hash> AnnotatedCanonInterner<A> {
    /// Creates an empty interner.
    pub fn new() -> Self {
        AnnotatedCanonInterner {
            codes: HashMap::new(),
        }
    }

    /// Number of distinct annotated shapes seen so far.
    pub fn distinct_shapes(&self) -> usize {
        self.codes.len()
    }

    /// Interns an annotated shape, sorting `child_codes` so that child
    /// order is irrelevant, and returns its canonical code.
    pub fn intern(&mut self, label: &str, ann: Option<&A>, mut child_codes: Vec<u32>) -> u32 {
        child_codes.sort_unstable();
        let next = self.codes.len() as u32;
        *self
            .codes
            .entry((label.to_string(), ann.cloned(), child_codes))
            .or_insert(next)
    }
}

impl<A: Clone + Eq + Hash> Default for AnnotatedCanonInterner<A> {
    fn default() -> Self {
        Self::new()
    }
}

/// Canonical codes computed for one tree by a [`CanonInterner`].
#[derive(Clone, Debug)]
pub struct CanonCodes {
    /// Code of every reachable node.
    pub codes: HashMap<NodeId, u32>,
    /// Code of the root (the canonical code of the whole tree).
    pub root_code: u32,
}

/// Decides isomorphism of two unordered labeled trees (Definition 1).
///
/// Runs in time linear in the sizes of the two trees (up to hashing).
pub fn isomorphic(a: &DataTree, b: &DataTree, semantics: Semantics) -> bool {
    if semantics == Semantics::MultiSet && a.len() != b.len() {
        return false;
    }
    let mut interner = CanonInterner::new();
    let ca = interner.canonize(a, semantics);
    let cb = interner.canonize(b, semantics);
    ca.root_code == cb.root_code
}

/// A canonical *string* for a tree: stable across processes and usable as a
/// hash-map key (e.g. to normalize possible-world sets). Two trees have the
/// same canonical string iff they are isomorphic under the given semantics.
pub fn canonical_string(tree: &DataTree, semantics: Semantics) -> String {
    fn rec(tree: &DataTree, node: NodeId, semantics: Semantics) -> String {
        let mut child_strings: Vec<String> = tree
            .children(node)
            .iter()
            .map(|&c| rec(tree, c, semantics))
            .collect();
        child_strings.sort();
        if semantics == Semantics::Set {
            child_strings.dedup();
        }
        let mut out = String::new();
        // Escape the label so that labels containing parentheses or commas
        // cannot collide with the structural syntax.
        out.push('"');
        for ch in tree.label(node).chars() {
            if ch == '"' || ch == '\\' {
                out.push('\\');
            }
            out.push(ch);
        }
        out.push('"');
        out.push('(');
        out.push_str(&child_strings.join(","));
        out.push(')');
        out
    }
    rec(tree, tree.root(), semantics)
}

/// A 64-bit structural hash of the canonical string — convenient as a cheap
/// pre-filter before full isomorphism checks.
pub fn canonical_hash(tree: &DataTree, semantics: Semantics) -> u64 {
    // FNV-1a over the canonical string: deterministic across runs, unlike
    // the std hasher.
    let s = canonical_string(tree, semantics);
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in s.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{star, TreeSpec};

    fn t(spec: TreeSpec) -> DataTree {
        spec.build()
    }

    #[test]
    fn single_nodes_isomorphic_iff_same_label() {
        let a = DataTree::new("A");
        let a2 = DataTree::new("A");
        let b = DataTree::new("B");
        assert!(isomorphic(&a, &a2, Semantics::MultiSet));
        assert!(!isomorphic(&a, &b, Semantics::MultiSet));
    }

    #[test]
    fn child_order_is_irrelevant() {
        let x = t(TreeSpec::node(
            "A",
            vec![
                TreeSpec::leaf("B"),
                TreeSpec::node("C", vec![TreeSpec::leaf("D")]),
            ],
        ));
        let y = t(TreeSpec::node(
            "A",
            vec![
                TreeSpec::node("C", vec![TreeSpec::leaf("D")]),
                TreeSpec::leaf("B"),
            ],
        ));
        assert!(isomorphic(&x, &y, Semantics::MultiSet));
        assert_eq!(
            canonical_string(&x, Semantics::MultiSet),
            canonical_string(&y, Semantics::MultiSet)
        );
    }

    #[test]
    fn multiset_semantics_distinguishes_duplicate_children() {
        // The paper's Section 2 example: root with two identical B children
        // vs root with a single B child.
        let two = star("A", "B", 2);
        let one = star("A", "B", 1);
        assert!(!isomorphic(&two, &one, Semantics::MultiSet));
        assert!(isomorphic(&two, &one, Semantics::Set));
    }

    #[test]
    fn set_semantics_collapses_recursively() {
        let a = t(TreeSpec::node(
            "A",
            vec![
                TreeSpec::node("B", vec![TreeSpec::leaf("C"), TreeSpec::leaf("C")]),
                TreeSpec::node("B", vec![TreeSpec::leaf("C")]),
            ],
        ));
        let b = t(TreeSpec::node(
            "A",
            vec![TreeSpec::node("B", vec![TreeSpec::leaf("C")])],
        ));
        assert!(isomorphic(&a, &b, Semantics::Set));
        assert!(!isomorphic(&a, &b, Semantics::MultiSet));
    }

    #[test]
    fn different_shapes_are_not_isomorphic() {
        let path = t(TreeSpec::node(
            "A",
            vec![TreeSpec::node("B", vec![TreeSpec::leaf("C")])],
        ));
        let flat = t(TreeSpec::node(
            "A",
            vec![TreeSpec::leaf("B"), TreeSpec::leaf("C")],
        ));
        assert!(!isomorphic(&path, &flat, Semantics::MultiSet));
        assert!(!isomorphic(&path, &flat, Semantics::Set));
    }

    #[test]
    fn labels_with_special_characters_do_not_collide() {
        let tricky = t(TreeSpec::node("A\"(", vec![TreeSpec::leaf("B")]));
        let plain = t(TreeSpec::node("A", vec![TreeSpec::leaf("B")]));
        assert!(!isomorphic(&tricky, &plain, Semantics::MultiSet));
        assert_ne!(
            canonical_string(&tricky, Semantics::MultiSet),
            canonical_string(&plain, Semantics::MultiSet)
        );
    }

    #[test]
    fn canonical_hash_agrees_with_isomorphism_on_samples() {
        let a = t(TreeSpec::node(
            "A",
            vec![
                TreeSpec::leaf("B"),
                TreeSpec::leaf("C"),
                TreeSpec::leaf("B"),
            ],
        ));
        let b = t(TreeSpec::node(
            "A",
            vec![
                TreeSpec::leaf("C"),
                TreeSpec::leaf("B"),
                TreeSpec::leaf("B"),
            ],
        ));
        assert_eq!(
            canonical_hash(&a, Semantics::MultiSet),
            canonical_hash(&b, Semantics::MultiSet)
        );
    }

    #[test]
    fn interner_is_shared_across_trees() {
        let mut interner = CanonInterner::new();
        let a = star("A", "B", 3);
        let b = star("A", "B", 3);
        let ca = interner.canonize(&a, Semantics::MultiSet);
        let cb = interner.canonize(&b, Semantics::MultiSet);
        assert_eq!(ca.root_code, cb.root_code);
        // Shapes: leaf B, and A with three B children.
        assert_eq!(interner.distinct_shapes(), 2);
    }

    #[test]
    fn deep_trees_canonize_without_stack_overflow_in_interner_path() {
        // The interner path is iterative; only canonical_string is
        // recursive, so keep this moderately deep.
        let mut tree = DataTree::new("A");
        let mut cur = tree.root();
        for _ in 0..500 {
            cur = tree.add_child(cur, "A");
        }
        let mut interner = CanonInterner::new();
        let codes = interner.canonize(&tree, Semantics::MultiSet);
        assert_eq!(codes.codes.len(), 501);
    }
}
