//! Arena-backed rooted unordered labeled trees.
//!
//! Nodes live in a `Vec` and are addressed by [`NodeId`]. Structural
//! mutation is limited to adding children and detaching whole subtrees,
//! which is exactly what prob-tree updates need. Detached nodes stay in the
//! arena (their storage is reclaimed only by [`DataTree::compact`]) but are
//! never reached by root-based traversals, so all semantic operations see a
//! consistent tree.

use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;

use crate::store::{NodeStore, ShapeId};

/// Identifier of a node inside one [`DataTree`] arena.
///
/// A `NodeId` is only meaningful for the tree that produced it; using it
/// with another tree yields unspecified (but memory-safe) results.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Returns the raw index of this node in the arena.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NodeId` from a raw index. Intended for (de)serialization
    /// code that has validated the index against the arena length.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        NodeId(index as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[derive(Clone, Debug)]
struct NodeData {
    label: String,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    /// `false` once the node has been detached from the tree.
    attached: bool,
}

/// An unordered labeled rooted tree (Definition 1 of the paper).
///
/// The tree always has at least one node, the root. Children are stored in
/// insertion order but no operation in this workspace gives that order any
/// semantic meaning: isomorphism, queries, updates and DTD validation all
/// treat children as a multiset.
#[derive(Clone, Debug)]
pub struct DataTree {
    nodes: Vec<NodeData>,
    root: NodeId,
}

impl DataTree {
    /// Creates a tree consisting of a single root node with `label`.
    pub fn new(label: impl Into<String>) -> Self {
        let root = NodeData {
            label: label.into(),
            parent: None,
            children: Vec::new(),
            attached: true,
        };
        DataTree {
            nodes: vec![root],
            root: NodeId(0),
        }
    }

    /// The root node of the tree.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The label of `node`.
    #[inline]
    pub fn label(&self, node: NodeId) -> &str {
        &self.nodes[node.index()].label
    }

    /// Replaces the label of `node`.
    pub fn set_label(&mut self, node: NodeId, label: impl Into<String>) {
        self.nodes[node.index()].label = label.into();
    }

    /// The parent of `node`, or `None` for the root (and for detached
    /// subtree roots).
    #[inline]
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.nodes[node.index()].parent
    }

    /// The children of `node`, in insertion order (no semantic order).
    #[inline]
    pub fn children(&self, node: NodeId) -> &[NodeId] {
        &self.nodes[node.index()].children
    }

    /// Whether `node` is still reachable from the root.
    pub fn is_attached(&self, node: NodeId) -> bool {
        if !self.nodes[node.index()].attached {
            return false;
        }
        // Walk up: a node is attached iff every ancestor is attached and the
        // walk terminates at the root.
        let mut cur = node;
        loop {
            if cur == self.root {
                return true;
            }
            match self.nodes[cur.index()].parent {
                Some(p) if self.nodes[p.index()].attached => cur = p,
                _ => return false,
            }
        }
    }

    /// Adds a new child with `label` under `parent` and returns its id.
    pub fn add_child(&mut self, parent: NodeId, label: impl Into<String>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeData {
            label: label.into(),
            parent: Some(parent),
            children: Vec::new(),
            attached: true,
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Grafts a copy of `other` (the whole tree) as a new child of
    /// `parent`. Returns the id of the copied root and a mapping from
    /// `other`'s node ids to the new ids in `self`.
    pub fn graft(&mut self, parent: NodeId, other: &DataTree) -> (NodeId, HashMap<NodeId, NodeId>) {
        let mut mapping = HashMap::new();
        let new_root = self.add_child(parent, other.label(other.root()));
        mapping.insert(other.root(), new_root);
        // Breadth-first copy preserves parent-before-child ordering.
        let mut queue = vec![other.root()];
        while let Some(src) = queue.pop() {
            let dst = mapping[&src];
            for &child in other.children(src) {
                let new_child = self.add_child(dst, other.label(child));
                mapping.insert(child, new_child);
                queue.push(child);
            }
        }
        (new_root, mapping)
    }

    /// Detaches the subtree rooted at `node` from the tree. The root cannot
    /// be detached. The detached nodes remain in the arena but are excluded
    /// from all root-based traversals.
    ///
    /// # Panics
    /// Panics if `node` is the root.
    pub fn detach(&mut self, node: NodeId) {
        assert!(node != self.root, "cannot detach the root of a data tree");
        if let Some(parent) = self.nodes[node.index()].parent {
            self.nodes[parent.index()].children.retain(|&c| c != node);
        }
        self.nodes[node.index()].parent = None;
        self.nodes[node.index()].attached = false;
    }

    /// Number of nodes reachable from the root.
    pub fn len(&self) -> usize {
        self.iter().count()
    }

    /// Whether the tree consists of the root only.
    pub fn is_empty_but_root(&self) -> bool {
        self.children(self.root).is_empty()
    }

    /// `true` never: a data tree always contains at least the root. Present
    /// to satisfy the usual `len`/`is_empty` pairing.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Total arena capacity, including detached nodes. Useful to decide when
    /// [`DataTree::compact`] is worthwhile.
    pub fn arena_len(&self) -> usize {
        self.nodes.len()
    }

    /// Pre-order iterator over the nodes reachable from the root.
    pub fn iter(&self) -> PreOrder<'_> {
        PreOrder {
            tree: self,
            stack: vec![self.root],
        }
    }

    /// Pre-order iterator over the nodes of the subtree rooted at `node`.
    pub fn iter_subtree(&self, node: NodeId) -> PreOrder<'_> {
        PreOrder {
            tree: self,
            stack: vec![node],
        }
    }

    /// The nodes of the subtree rooted at `node`, collected in pre-order.
    pub fn descendants(&self, node: NodeId) -> Vec<NodeId> {
        self.iter_subtree(node).collect()
    }

    /// All strict ancestors of `node`, from its parent up to the root.
    pub fn ancestors(&self, node: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut cur = node;
        while let Some(p) = self.parent(cur) {
            out.push(p);
            cur = p;
        }
        out
    }

    /// Depth of `node` (root has depth 0).
    pub fn depth(&self, node: NodeId) -> usize {
        self.ancestors(node).len()
    }

    /// Height of the tree: length of the longest root-to-leaf path, counted
    /// in edges. A root-only tree has height 0.
    pub fn height(&self) -> usize {
        self.iter().map(|n| self.depth(n)).max().unwrap_or(0)
    }

    /// `true` if `anc` is `node` or a (strict) ancestor of `node`.
    pub fn is_ancestor_or_self(&self, anc: NodeId, node: NodeId) -> bool {
        let mut cur = Some(node);
        while let Some(c) = cur {
            if c == anc {
                return true;
            }
            cur = self.parent(c);
        }
        false
    }

    /// Returns a new tree containing only the nodes in `keep` (which must
    /// include the root and be closed under parents — see
    /// [`crate::subtree::SubDataTree`]), together with the mapping from old
    /// to new node ids.
    pub fn extract(&self, keep: &dyn Fn(NodeId) -> bool) -> (DataTree, HashMap<NodeId, NodeId>) {
        assert!(keep(self.root), "extraction must keep the root");
        let mut out = DataTree::new(self.label(self.root));
        let mut mapping = HashMap::new();
        mapping.insert(self.root, out.root());
        let mut stack = vec![self.root];
        while let Some(node) = stack.pop() {
            let new_parent = mapping[&node];
            for &child in self.children(node) {
                if keep(child) {
                    let new_child = out.add_child(new_parent, self.label(child));
                    mapping.insert(child, new_child);
                    stack.push(child);
                }
            }
        }
        (out, mapping)
    }

    /// Rebuilds the arena keeping only reachable nodes. Returns the new tree
    /// and the old-id → new-id mapping.
    pub fn compact(&self) -> (DataTree, HashMap<NodeId, NodeId>) {
        self.extract(&|_| true)
    }

    /// Deep structural clone of the subtree rooted at `node`, as an
    /// independent tree.
    pub fn subtree_to_tree(&self, node: NodeId) -> DataTree {
        let mut out = DataTree::new(self.label(node));
        let mut mapping = HashMap::new();
        mapping.insert(node, out.root());
        let mut stack = vec![node];
        while let Some(n) = stack.pop() {
            let new_parent = mapping[&n];
            for &child in self.children(n) {
                let new_child = out.add_child(new_parent, self.label(child));
                mapping.insert(child, new_child);
                stack.push(child);
            }
        }
        out
    }

    /// Expands a shape from a hash-consed [`NodeStore`] as a new child of
    /// `parent`, returning the id of the expansion's root. `on_node` is
    /// invoked once per created node (the expansion root included) with
    /// the node's stored annotation, letting callers re-attach
    /// occurrence data (e.g. prob-tree conditions) as the copy grows.
    pub fn graft_shape<A: Clone + Eq + Hash>(
        &mut self,
        parent: NodeId,
        store: &NodeStore<A>,
        shape: ShapeId,
        on_node: &mut dyn FnMut(NodeId, Option<&A>),
    ) -> NodeId {
        let new_root = self.add_child(parent, store.label(shape));
        on_node(new_root, store.ann(shape));
        self.graft_shape_children(store, shape, new_root, on_node);
        new_root
    }

    /// Expands the *children* of `shape` under the existing node `target`,
    /// in stored order. See [`DataTree::graft_shape`] for `on_node`.
    pub fn graft_shape_children<A: Clone + Eq + Hash>(
        &mut self,
        store: &NodeStore<A>,
        shape: ShapeId,
        target: NodeId,
        on_node: &mut dyn FnMut(NodeId, Option<&A>),
    ) {
        // Depth-first with explicit stack; children of one parent are
        // pushed in reverse so they are created in stored order.
        let mut stack: Vec<(NodeId, ShapeId)> = store
            .children(shape)
            .iter()
            .rev()
            .map(|&c| (target, c))
            .collect();
        while let Some((dst, s)) = stack.pop() {
            let node = self.add_child(dst, store.label(s));
            on_node(node, store.ann(s));
            for &c in store.children(s).iter().rev() {
                stack.push((node, c));
            }
        }
    }

    /// Collects, for every reachable node, the multiset of child labels.
    /// Used by DTD validation.
    pub fn child_label_counts(&self, node: NodeId) -> HashMap<&str, usize> {
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for &c in self.children(node) {
            *counts.entry(self.label(c)).or_insert(0) += 1;
        }
        counts
    }
}

/// Pre-order iterator over reachable nodes of a [`DataTree`].
pub struct PreOrder<'a> {
    tree: &'a DataTree,
    stack: Vec<NodeId>,
}

impl<'a> Iterator for PreOrder<'a> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let node = self.stack.pop()?;
        // Reversed push so siblings pop left-to-right: the traversal is a
        // true pre-order, and consumers that rebuild trees from it (e.g.
        // deep subtree copies) preserve child order.
        for &child in self.tree.children(node).iter().rev() {
            self.stack.push(child);
        }
        Some(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (DataTree, NodeId, NodeId, NodeId) {
        let mut t = DataTree::new("A");
        let root = t.root();
        let b = t.add_child(root, "B");
        let c = t.add_child(root, "C");
        let d = t.add_child(c, "D");
        (t, b, c, d)
    }

    #[test]
    fn new_tree_has_single_root() {
        let t = DataTree::new("A");
        assert_eq!(t.len(), 1);
        assert_eq!(t.label(t.root()), "A");
        assert!(t.parent(t.root()).is_none());
        assert!(t.is_empty_but_root());
    }

    #[test]
    fn add_child_links_parent_and_children() {
        let (t, b, c, d) = sample();
        assert_eq!(t.len(), 4);
        assert_eq!(t.parent(b), Some(t.root()));
        assert_eq!(t.parent(d), Some(c));
        assert_eq!(t.children(t.root()), &[b, c]);
        assert_eq!(t.label(d), "D");
    }

    #[test]
    fn detach_removes_whole_subtree() {
        let (mut t, b, c, d) = sample();
        t.detach(c);
        assert_eq!(t.len(), 2);
        assert!(t.is_attached(b));
        assert!(!t.is_attached(c));
        assert!(
            !t.is_attached(d),
            "descendants of a detached node are detached"
        );
        let reachable: Vec<_> = t.iter().collect();
        assert!(!reachable.contains(&c));
        assert!(!reachable.contains(&d));
    }

    #[test]
    #[should_panic(expected = "cannot detach the root")]
    fn detach_root_panics() {
        let (mut t, _, _, _) = sample();
        let root = t.root();
        t.detach(root);
    }

    #[test]
    fn graft_copies_other_tree() {
        let (mut t, _, c, _) = sample();
        let mut other = DataTree::new("X");
        let xr = other.root();
        other.add_child(xr, "Y");
        let (new_root, mapping) = t.graft(c, &other);
        assert_eq!(t.label(new_root), "X");
        assert_eq!(mapping.len(), 2);
        assert_eq!(t.len(), 6);
        assert_eq!(t.parent(new_root), Some(c));
    }

    #[test]
    fn ancestors_and_depth() {
        let (t, _, c, d) = sample();
        assert_eq!(t.ancestors(d), vec![c, t.root()]);
        assert_eq!(t.depth(d), 2);
        assert_eq!(t.depth(t.root()), 0);
        assert_eq!(t.height(), 2);
    }

    #[test]
    fn is_ancestor_or_self_relation() {
        let (t, b, c, d) = sample();
        assert!(t.is_ancestor_or_self(t.root(), d));
        assert!(t.is_ancestor_or_self(c, d));
        assert!(t.is_ancestor_or_self(d, d));
        assert!(!t.is_ancestor_or_self(b, d));
        assert!(!t.is_ancestor_or_self(d, c));
    }

    #[test]
    fn extract_keeps_parent_closed_subset() {
        let (t, b, c, d) = sample();
        let keep = move |n: NodeId| n != b;
        let (sub, mapping) = t.extract(&keep);
        assert_eq!(sub.len(), 3);
        assert!(mapping.contains_key(&c));
        assert!(mapping.contains_key(&d));
        assert!(!mapping.contains_key(&b));
    }

    #[test]
    fn compact_after_detach_shrinks_arena() {
        let (mut t, _, c, _) = sample();
        t.detach(c);
        assert_eq!(t.arena_len(), 4);
        let (compacted, _) = t.compact();
        assert_eq!(compacted.arena_len(), 2);
        assert_eq!(compacted.len(), 2);
    }

    #[test]
    fn subtree_to_tree_is_independent() {
        let (t, _, c, _) = sample();
        let sub = t.subtree_to_tree(c);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.label(sub.root()), "C");
    }

    #[test]
    fn child_label_counts_multiset() {
        let mut t = DataTree::new("A");
        let r = t.root();
        t.add_child(r, "B");
        t.add_child(r, "B");
        t.add_child(r, "C");
        let counts = t.child_label_counts(r);
        assert_eq!(counts.get("B"), Some(&2));
        assert_eq!(counts.get("C"), Some(&1));
        assert_eq!(counts.get("D"), None);
    }

    #[test]
    fn preorder_visits_every_reachable_node_once() {
        let (t, _, _, _) = sample();
        let visited: Vec<_> = t.iter().collect();
        assert_eq!(visited.len(), 4);
        let mut dedup = visited.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 4);
    }
}
